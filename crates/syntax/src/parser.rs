//! Parser for NKA expressions.
//!
//! Grammar (multiplication by juxtaposition, as in the paper):
//!
//! ```text
//! expr   := term ('+' term)*
//! term   := factor factor*
//! factor := base '*'*
//! base   := '0' | '1' | ident | '(' expr ')'
//! ident  := [a-zA-Z_][a-zA-Z0-9_']*
//! ```

use crate::{Expr, Symbol};
use std::fmt;
use std::str::FromStr;

/// Error returned when parsing an [`Expr`] from malformed input.
///
/// Carries the half-open byte span `[start, end)` of the offending input
/// (the span of the unexpected token, or an empty span at the end of the
/// input), so diagnostics can point at the exact source location — see
/// [`ParseExprError::caret`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExprError {
    message: String,
    start: usize,
    end: usize,
}

impl ParseExprError {
    fn new(message: impl Into<String>, start: usize, end: usize) -> Self {
        ParseExprError {
            message: message.into(),
            start,
            end,
        }
    }

    /// Byte offset in the input at which the error occurred.
    pub fn position(&self) -> usize {
        self.start
    }

    /// The half-open byte span `[start, end)` of the offending token.
    /// An empty span (`start == end`) means the error is *at* that point —
    /// typically an unexpected end of input.
    pub fn span(&self) -> (usize, usize) {
        (self.start, self.end)
    }

    /// The bare message, without the byte-offset suffix of `Display`.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Renders the source with a `^^^` caret line under the offending span:
    ///
    /// ```text
    /// a + ?
    ///     ^ unexpected character '?'
    /// ```
    ///
    /// `src` must be the string this error was produced from; columns are
    /// counted in characters, so multi-byte input aligns correctly.
    pub fn caret(&self, src: &str) -> String {
        render_caret(src, self.start, self.end, &self.message)
    }
}

/// Renders `src` with a `^^^` caret line under the byte span
/// `[start, end)` followed by `msg` — the shared diagnostic shape of
/// every span-bearing parse error in the workspace ([`ParseExprError`]
/// here, `ParseProgError` in the quantum surface language). Columns are
/// counted in characters, so multi-byte input aligns; an empty or
/// out-of-range span renders a single caret at the clamped position.
#[must_use]
pub fn render_caret(src: &str, start: usize, end: usize, msg: &str) -> String {
    let start = start.min(src.len());
    let end = end.clamp(start, src.len());
    let col = src[..start].chars().count();
    let width = src[start..end].chars().count().max(1);
    format!(
        "{src}\n{pad}{carets} {msg}",
        pad = " ".repeat(col),
        carets = "^".repeat(width),
    )
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.start)
    }
}

impl std::error::Error for ParseExprError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Plus,
    Star,
    LParen,
    RParen,
    Zero,
    One,
    Ident(String),
}

/// A token plus its half-open byte span in the source.
type Spanned = (Token, usize, usize);

fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseExprError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let single = |t| (t, i, i + 1);
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'+' => {
                tokens.push(single(Token::Plus));
                i += 1;
            }
            b'*' => {
                tokens.push(single(Token::Star));
                i += 1;
            }
            b'(' => {
                tokens.push(single(Token::LParen));
                i += 1;
            }
            b')' => {
                tokens.push(single(Token::RParen));
                i += 1;
            }
            b'0' => {
                tokens.push(single(Token::Zero));
                i += 1;
            }
            b'1' => {
                tokens.push(single(Token::One));
                i += 1;
            }
            b'.' | b';' => i += 1, // optional explicit composition separators
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'\'')
                {
                    i += 1;
                }
                tokens.push((Token::Ident(input[start..i].to_owned()), start, i));
            }
            _ => {
                // Span the whole character, not just its first byte.
                let ch = input[i..].chars().next().expect("non-empty remainder");
                return Err(ParseExprError::new(
                    format!("unexpected character {ch:?}"),
                    i,
                    i + ch.len_utf8(),
                ));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _, _)| t)
    }

    /// The span of the current token, or the empty end-of-input span.
    fn here(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos)
            .map_or((self.input_len, self.input_len), |&(_, s, e)| (s, e))
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseExprError> {
        let mut acc = self.parse_term()?;
        while self.peek() == Some(&Token::Plus) {
            self.bump();
            let rhs = self.parse_term()?;
            acc = acc.add(&rhs);
        }
        Ok(acc)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseExprError> {
        let mut acc = self.parse_factor()?;
        loop {
            match self.peek() {
                Some(Token::Zero | Token::One | Token::Ident(_) | Token::LParen) => {
                    let rhs = self.parse_factor()?;
                    acc = acc.mul(&rhs);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn parse_factor(&mut self) -> Result<Expr, ParseExprError> {
        let mut base = self.parse_base()?;
        while self.peek() == Some(&Token::Star) {
            self.bump();
            base = base.star();
        }
        Ok(base)
    }

    fn parse_base(&mut self) -> Result<Expr, ParseExprError> {
        let (at, at_end) = self.here();
        match self.bump() {
            Some(Token::Zero) => Ok(Expr::zero()),
            Some(Token::One) => Ok(Expr::one()),
            Some(Token::Ident(name)) => Ok(Expr::atom(Symbol::intern(&name))),
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                let (close, close_end) = self.here();
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(ParseExprError::new(
                        format!("expected ')' to close the '(' at byte {at}"),
                        close,
                        close_end,
                    )),
                }
            }
            Some(tok) => Err(ParseExprError::new(
                format!("unexpected token {tok:?}"),
                at,
                at_end,
            )),
            None => Err(ParseExprError::new("unexpected end of input", at, at_end)),
        }
    }
}

impl FromStr for Expr {
    type Err = ParseExprError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let tokens = tokenize(s)?;
        let mut parser = Parser {
            tokens,
            pos: 0,
            input_len: s.len(),
        };
        let expr = parser.parse_expr()?;
        if parser.pos != parser.tokens.len() {
            let (start, end) = parser.here();
            return Err(ParseExprError::new("trailing input", start, end));
        }
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExprNode;

    #[test]
    fn precedence_star_over_mul_over_add() {
        let e: Expr = "a + b c*".parse().unwrap();
        match e.node() {
            ExprNode::Add(l, r) => {
                assert_eq!(l.to_string(), "a");
                assert_eq!(r.to_string(), "b c*");
            }
            _ => panic!("expected Add at root"),
        }
    }

    #[test]
    fn juxtaposition_is_left_associative() {
        let e: Expr = "a b c".parse().unwrap();
        assert_eq!(e, "(a b) c".parse().unwrap());
    }

    #[test]
    fn iterated_star() {
        let e: Expr = "a**".parse().unwrap();
        assert_eq!(e, Expr::atom_str("a").star().star());
    }

    #[test]
    fn identifiers_with_digits_and_primes() {
        let e: Expr = "m0 u_inv p'".parse().unwrap();
        let mut names: Vec<String> = e.atoms().iter().map(|s| s.name()).collect();
        names.sort();
        assert_eq!(names, vec!["m0", "p'", "u_inv"]);
    }

    #[test]
    fn zero_one_are_constants_not_atoms() {
        let e: Expr = "0 + 1".parse().unwrap();
        assert!(e.atoms().is_empty());
    }

    #[test]
    fn error_spans() {
        let err = "a + ?".parse::<Expr>().unwrap_err();
        assert_eq!(err.span(), (4, 5));
        // An unexpected multi-character token spans the whole token.
        let err = "a * abc + +".parse::<Expr>().unwrap_err();
        assert_eq!(err.span(), (10, 11));
        // End-of-input errors carry the empty span at the end.
        let err = "a + ".parse::<Expr>().unwrap_err();
        assert_eq!(err.span(), (4, 4));
        // Multi-byte characters span all their bytes.
        let err = "a + λ".parse::<Expr>().unwrap_err();
        assert_eq!(err.span(), (4, 6));
    }

    #[test]
    fn caret_rendering_points_at_the_offence() {
        let src = "a + ?";
        let err = src.parse::<Expr>().unwrap_err();
        let rendered = err.caret(src);
        assert_eq!(rendered, "a + ?\n    ^ unexpected character '?'");
        // A multi-byte character spans two bytes but renders one caret.
        let src = "a + λ";
        let err = src.parse::<Expr>().unwrap_err();
        let rendered = err.caret(src);
        assert_eq!(rendered, "a + λ\n    ^ unexpected character 'λ'");
        // End-of-input: a single caret one past the last character.
        let src = "(a + b";
        let err = src.parse::<Expr>().unwrap_err();
        let rendered = err.caret(src);
        assert!(
            rendered.starts_with("(a + b\n      ^"),
            "unexpected rendering: {rendered:?}"
        );
    }

    #[test]
    fn unclosed_paren_names_the_opener() {
        let err = "(a + b".parse::<Expr>().unwrap_err();
        assert!(err.to_string().contains("')'"), "{err}");
        assert!(err.to_string().contains("byte 0"), "{err}");
        // The span sits at the point where ')' was expected, not the '('.
        assert_eq!(err.span(), (6, 6));
        // A stray closer mid-expression is reported at the closer.
        let err = "(a ) b )".parse::<Expr>().unwrap_err();
        assert_eq!(err.span(), (7, 8));
    }

    #[test]
    fn error_positions() {
        let err = "a + ?".parse::<Expr>().unwrap_err();
        assert_eq!(err.position(), 4);
        let err = "(a + b".parse::<Expr>().unwrap_err();
        assert!(err.to_string().contains("expected ')'") || err.to_string().contains("end"));
        let err = "a ) b".parse::<Expr>().unwrap_err();
        assert!(err.to_string().contains("trailing"));
        assert!("".parse::<Expr>().is_err());
        assert!("a + ".parse::<Expr>().is_err());
        assert!("*".parse::<Expr>().is_err());
    }

    #[test]
    fn separators_are_ignored() {
        let e: Expr = "a; b . c".parse().unwrap();
        assert_eq!(e, "a b c".parse().unwrap());
    }
}
