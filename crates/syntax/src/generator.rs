//! Random expression generation for tests and benchmarks.
//!
//! Downstream crates (the decision procedure, the power-series oracle, the
//! quantum interpretation) are cross-validated on random expressions; the
//! generator lives here so all of them sample from the same distribution.

use crate::{Expr, Symbol};

/// Configuration for [`random_expr`].
///
/// # Examples
///
/// ```
/// use nka_syntax::{random_expr, ExprGenConfig, Symbol};
/// let alphabet = vec![Symbol::intern("a"), Symbol::intern("b")];
/// let config = ExprGenConfig::new(alphabet).with_target_size(12);
/// let mut seed = 42u64;
/// let e = random_expr(&config, &mut seed);
/// assert!(e.size() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct ExprGenConfig {
    alphabet: Vec<Symbol>,
    target_size: usize,
    star_weight: u32,
    constant_weight: u32,
}

impl ExprGenConfig {
    /// A config over the given alphabet with default size 10.
    pub fn new(alphabet: Vec<Symbol>) -> Self {
        ExprGenConfig {
            alphabet,
            target_size: 10,
            star_weight: 2,
            constant_weight: 1,
        }
    }

    /// Sets the approximate node count of generated expressions.
    pub fn with_target_size(mut self, size: usize) -> Self {
        self.target_size = size.max(1);
        self
    }

    /// Sets the relative weight of `*` among the internal operators
    /// (`+` and `·` have weight 3 each).
    pub fn with_star_weight(mut self, weight: u32) -> Self {
        self.star_weight = weight;
        self
    }

    /// Sets the relative weight of `0`/`1` leaves versus atoms.
    pub fn with_constant_weight(mut self, weight: u32) -> Self {
        self.constant_weight = weight;
        self
    }

    /// The alphabet sampled from.
    pub fn alphabet(&self) -> &[Symbol] {
        &self.alphabet
    }
}

/// A small deterministic xorshift PRNG; `state` is advanced in place.
/// Keeping the generator dependency-free lets `nka-syntax` stay a leaf crate.
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    // Avoid the all-zero fixed point.
    *state = if x == 0 { 0x9E3779B97F4A7C15 } else { x };
    *state
}

fn below(state: &mut u64, bound: u64) -> u64 {
    next_u64(state) % bound.max(1)
}

/// Generates a random expression of roughly `config.target_size` nodes,
/// advancing `seed` (a xorshift state) in place. Deterministic in the seed.
pub fn random_expr(config: &ExprGenConfig, seed: &mut u64) -> Expr {
    gen_sized(config, config.target_size, seed)
}

fn gen_sized(config: &ExprGenConfig, size: usize, seed: &mut u64) -> Expr {
    if size <= 1 {
        let leaf_roll = below(seed, u64::from(config.constant_weight) + 4);
        return if leaf_roll < u64::from(config.constant_weight) {
            if below(seed, 2) == 0 {
                Expr::zero()
            } else {
                Expr::one()
            }
        } else if config.alphabet.is_empty() {
            Expr::one()
        } else {
            let idx = below(seed, config.alphabet.len() as u64) as usize;
            Expr::atom(config.alphabet[idx])
        };
    }
    let total = 6 + config.star_weight;
    let roll = below(seed, u64::from(total));
    if roll < 3 {
        let left = below(seed, (size - 1) as u64).max(1) as usize;
        let l = gen_sized(config, left, seed);
        let r = gen_sized(config, size - 1 - left.min(size - 1), seed);
        l.add(&r)
    } else if roll < 6 {
        let left = below(seed, (size - 1) as u64).max(1) as usize;
        let l = gen_sized(config, left, seed);
        let r = gen_sized(config, size - 1 - left.min(size - 1), seed);
        l.mul(&r)
    } else {
        gen_sized(config, size - 1, seed).star()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let alphabet = vec![Symbol::intern("a"), Symbol::intern("b")];
        let config = ExprGenConfig::new(alphabet);
        let mut s1 = 7;
        let mut s2 = 7;
        assert_eq!(random_expr(&config, &mut s1), random_expr(&config, &mut s2));
        // Consecutive draws differ (with overwhelming probability for this seed).
        let e1 = random_expr(&config, &mut s1);
        let e2 = random_expr(&config, &mut s1);
        assert!(e1 != e2 || e1.size() == 1);
    }

    #[test]
    fn sizes_are_reasonable() {
        let alphabet = vec![Symbol::intern("a")];
        let config = ExprGenConfig::new(alphabet).with_target_size(30);
        let mut seed = 99;
        for _ in 0..50 {
            let e = random_expr(&config, &mut seed);
            assert!(e.size() <= 40, "expression too large: {}", e.size());
        }
    }

    #[test]
    fn uses_only_configured_alphabet() {
        let a = Symbol::intern("only_sym");
        let config = ExprGenConfig::new(vec![a]).with_target_size(20);
        let mut seed = 3;
        for _ in 0..20 {
            let e = random_expr(&config, &mut seed);
            for sym in e.atoms() {
                assert_eq!(sym, a);
            }
        }
    }
}
