//! Hash-consed NKA expressions: the Expr API v2.
//!
//! Every distinct expression structure is interned exactly once in a
//! process-global, lock-striped arena; an [`Expr`] is a `Copy` handle
//! (an [`ExprId`] plus a direct node reference), so `Eq`, `Hash`, and
//! `clone` are all O(1) and two expressions are structurally equal *iff*
//! their handles are equal. The arena is append-only and shared across
//! threads, which makes `Expr: Send + Sync` — sessions and engines built
//! on top of it can move across threads freely.

use crate::Symbol;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash, Hasher, RandomState};
use std::ops::{Add, Mul};
use std::sync::{Mutex, OnceLock};

/// The node of an [`Expr`] (Definition 2.2).
///
/// Children are themselves interned handles, so a node is a few machine
/// words and node equality/hashing is O(1) — the property the
/// hash-consing arena relies on to deduplicate bottom-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExprNode {
    /// The additive unit `0` (encodes `abort`).
    Zero,
    /// The multiplicative unit `1` (encodes `skip`).
    One,
    /// An atomic symbol `a ∈ Σ`.
    Atom(Symbol),
    /// A sum `e₁ + e₂`.
    Add(Expr, Expr),
    /// A product `e₁ · e₂` (sequential composition).
    Mul(Expr, Expr),
    /// Kleene star `e*`.
    Star(Expr),
}

/// The dense, process-unique identity of an interned expression — the
/// canonical name of one element of `ExpΣ` (Definition 2.2 of the
/// paper: `e ::= 0 | 1 | a | e₁ + e₂ | e₁ · e₂ | e₁*`).
///
/// Because the arena deduplicates structurally (hash-consing), two
/// expressions denote the same id exactly when they are α-identical
/// terms of `ExpΣ`; the id is therefore a sound *and complete* key for
/// syntactic equality, and downstream caches (the `Decider` engine's
/// automaton, DFA, and verdict maps) key on it instead of on whole
/// trees. Note the identification is *syntactic* — NKA-provable
/// equality (`⊢NKA e = f`) is still the decision procedure's job.
///
/// Ids are `Copy`, 4 bytes, and totally ordered (arbitrarily but
/// consistently within a process), which makes normalized symmetric
/// cache keys like `(min(id₁, id₂), max(id₁, id₂))` trivial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// The raw arena index (stable for the life of the process).
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// An NKA expression over the global alphabet — an element of `ExpΣ`
/// (Definition 2.2 of the paper).
///
/// Since API v2 an `Expr` is a *hash-consed handle*: the expression
/// structure lives in a process-global interning arena and the handle is
/// `Copy` (4-byte [`ExprId`] + node reference). Consequences:
///
/// * `==`, `Hash`, and `clone`/copy are **O(1)** — equality is id
///   equality, which coincides with structural (α-)identity of the term
///   by the hash-consing invariant;
/// * shared subterms are stored once, so the paper's large derivations
///   (Appendix C.7) stay compact in memory;
/// * `Expr: Send + Sync` — expressions flow freely across threads.
///
/// Equality is structural, *not* NKA-provable equality — use the
/// decision procedure in `nka-core` for the latter.
///
/// # Examples
///
/// ```
/// use nka_syntax::Expr;
/// let p = Expr::atom_str("p");
/// let q = Expr::atom_str("q");
/// // (p + q)* built with operator sugar:
/// let e = (&p + &q).star();
/// assert_eq!(e.to_string(), "(p + q)*");
/// assert_eq!(e, "(p+q)*".parse()?);
/// // Hash-consing: rebuilding the same structure yields the same handle.
/// assert_eq!(e.id(), p.add(&q).star().id());
/// # Ok::<(), nka_syntax::ParseExprError>(())
/// ```
#[derive(Clone, Copy)]
pub struct Expr {
    id: ExprId,
    node: &'static ExprNode,
}

impl PartialEq for Expr {
    fn eq(&self, other: &Expr) -> bool {
        self.id == other.id
    }
}

impl Eq for Expr {}

impl Hash for Expr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

/// Number of lock stripes in the interning arena. Interning hashes the
/// node to pick a stripe, so concurrent builders (e.g. the parallel
/// batch workers) contend only 1/16th of the time.
const SHARD_BITS: u32 = 4;
const SHARDS: usize = 1 << SHARD_BITS;
/// Per-stripe capacity: ids are `u32` with the stripe in the low bits.
const MAX_PER_SHARD: usize = 1 << (32 - SHARD_BITS);

struct Shard {
    /// node → global id. Keys borrow the leaked nodes, so each node is
    /// stored once.
    ids: HashMap<&'static ExprNode, u32>,
    /// local index (`id >> SHARD_BITS`) → node.
    nodes: Vec<&'static ExprNode>,
}

struct ExprPool {
    /// One fixed hasher instance so shard choice is a pure function of
    /// the node for the life of the process.
    hasher: RandomState,
    shards: [Mutex<Shard>; SHARDS],
}

fn pool() -> &'static ExprPool {
    static POOL: OnceLock<ExprPool> = OnceLock::new();
    POOL.get_or_init(|| ExprPool {
        hasher: RandomState::new(),
        shards: std::array::from_fn(|_| {
            Mutex::new(Shard {
                ids: HashMap::new(),
                nodes: Vec::new(),
            })
        }),
    })
}

/// Interns `node`, returning its unique handle. Nodes are allocated
/// once and leaked — the arena is append-only for the process life,
/// which is what lets handles carry `&'static` node references with no
/// per-read locking.
///
/// # Panics
///
/// Panics if a stripe of the arena exceeds 2²⁸ distinct nodes, or if a
/// stripe mutex was poisoned by a panic on another thread.
fn intern(node: ExprNode) -> Expr {
    let pool = pool();
    let shard_idx = (pool.hasher.hash_one(node) as usize) & (SHARDS - 1);
    let mut shard = pool.shards[shard_idx]
        .lock()
        .expect("expression interner poisoned");
    if let Some(&id) = shard.ids.get(&node) {
        let node = shard.nodes[(id >> SHARD_BITS) as usize];
        return Expr {
            id: ExprId(id),
            node,
        };
    }
    let local = shard.nodes.len();
    assert!(local < MAX_PER_SHARD, "expression arena overflow");
    let id = ((local as u32) << SHARD_BITS) | shard_idx as u32;
    let leaked: &'static ExprNode = Box::leak(Box::new(node));
    shard.nodes.push(leaked);
    shard.ids.insert(leaked, id);
    Expr {
        id: ExprId(id),
        node: leaked,
    }
}

/// Total number of distinct expressions interned so far in this process
/// — the arena footprint behind every live [`Expr`]. Monotone;
/// observable via `nka --stats` as a cache-effectiveness signal.
#[must_use]
pub fn interned_expr_count() -> usize {
    pool()
        .shards
        .iter()
        .map(|s| s.lock().expect("expression interner poisoned").nodes.len())
        .sum()
}

impl Expr {
    /// The constant `0`.
    pub fn zero() -> Expr {
        static ZERO: OnceLock<Expr> = OnceLock::new();
        *ZERO.get_or_init(|| intern(ExprNode::Zero))
    }

    /// The constant `1`.
    pub fn one() -> Expr {
        static ONE: OnceLock<Expr> = OnceLock::new();
        *ONE.get_or_init(|| intern(ExprNode::One))
    }

    /// An atom for the given symbol.
    pub fn atom(sym: Symbol) -> Expr {
        intern(ExprNode::Atom(sym))
    }

    /// Convenience: intern `name` and wrap it as an atom.
    pub fn atom_str(name: &str) -> Expr {
        Expr::atom(Symbol::intern(name))
    }

    /// The sum `self + rhs` (no simplification; see [`Expr::simplified`]).
    pub fn add(&self, rhs: &Expr) -> Expr {
        intern(ExprNode::Add(*self, *rhs))
    }

    /// The product `self · rhs`.
    pub fn mul(&self, rhs: &Expr) -> Expr {
        intern(ExprNode::Mul(*self, *rhs))
    }

    /// The star `self*`.
    pub fn star(&self) -> Expr {
        intern(ExprNode::Star(*self))
    }

    /// Left-associated sum of `terms`; `0` for an empty iterator.
    pub fn sum<I: IntoIterator<Item = Expr>>(terms: I) -> Expr {
        let mut iter = terms.into_iter();
        match iter.next() {
            None => Expr::zero(),
            Some(first) => iter.fold(first, |acc, t| acc.add(&t)),
        }
    }

    /// Left-associated product of `factors`; `1` for an empty iterator.
    pub fn product<I: IntoIterator<Item = Expr>>(factors: I) -> Expr {
        let mut iter = factors.into_iter();
        match iter.next() {
            None => Expr::one(),
            Some(first) => iter.fold(first, |acc, t| acc.mul(&t)),
        }
    }

    /// The interned identity of this expression. Equal ids ⇔ equal
    /// (α-identical) terms; see [`ExprId`].
    #[must_use]
    pub fn id(&self) -> ExprId {
        self.id
    }

    /// Resolves an id back to its expression, if one was interned under
    /// it in this process.
    #[must_use]
    pub fn from_id(id: ExprId) -> Option<Expr> {
        let shard = pool().shards[(id.0 as usize) & (SHARDS - 1)]
            .lock()
            .expect("expression interner poisoned");
        shard
            .nodes
            .get((id.0 >> SHARD_BITS) as usize)
            .map(|&node| Expr { id, node })
    }

    /// A view of the root node. O(1) — the handle carries the node
    /// reference; no arena lock is taken.
    pub fn node(&self) -> &ExprNode {
        self.node
    }

    /// Number of nodes in the expression read as a *tree* (shared
    /// subterms counted with multiplicity, saturating at `usize::MAX`).
    ///
    /// Computed by a memoized walk over the interned DAG, so deeply
    /// shared expressions (whose tree reading is exponentially larger
    /// than their arena footprint) still cost linear time.
    pub fn size(&self) -> usize {
        fn go(e: &Expr, memo: &mut HashMap<ExprId, usize>) -> usize {
            if let Some(&n) = memo.get(&e.id) {
                return n;
            }
            let n = match e.node() {
                ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => 1,
                ExprNode::Add(l, r) | ExprNode::Mul(l, r) => 1usize
                    .saturating_add(go(l, memo))
                    .saturating_add(go(r, memo)),
                ExprNode::Star(e) => 1usize.saturating_add(go(e, memo)),
            };
            memo.insert(e.id, n);
            n
        }
        go(self, &mut HashMap::new())
    }

    /// Number of *distinct* interned subterms of this expression
    /// (itself included) — its true arena footprint, as opposed to the
    /// tree reading of [`Expr::size`]. The gap between the two is the
    /// sharing the hash-consing arena recovered.
    pub fn subterm_count(&self) -> usize {
        let mut seen = HashSet::new();
        self.collect_subterm_ids(&mut seen);
        seen.len()
    }

    /// Inserts the ids of all distinct subterms (self included) into
    /// `out`. Exposed so callers can take unions across several
    /// expressions (e.g. per-query footprint accounting in the API).
    pub fn collect_subterm_ids(&self, out: &mut HashSet<ExprId>) {
        if !out.insert(self.id) {
            return;
        }
        match self.node() {
            ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => {}
            ExprNode::Add(l, r) | ExprNode::Mul(l, r) => {
                l.collect_subterm_ids(out);
                r.collect_subterm_ids(out);
            }
            ExprNode::Star(e) => e.collect_subterm_ids(out),
        }
    }

    /// Star-nesting depth (0 for star-free expressions). Memoized over
    /// the interned DAG like [`Expr::size`].
    pub fn star_height(&self) -> usize {
        fn go(e: &Expr, memo: &mut HashMap<ExprId, usize>) -> usize {
            if let Some(&n) = memo.get(&e.id) {
                return n;
            }
            let n = match e.node() {
                ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => 0,
                ExprNode::Add(l, r) | ExprNode::Mul(l, r) => go(l, memo).max(go(r, memo)),
                ExprNode::Star(e) => 1 + go(e, memo),
            };
            memo.insert(e.id, n);
            n
        }
        go(self, &mut HashMap::new())
    }

    /// The set of atoms occurring in the expression.
    pub fn atoms(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        let mut seen = HashSet::new();
        self.collect_atoms(&mut out, &mut seen);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<Symbol>, seen: &mut HashSet<ExprId>) {
        if !seen.insert(self.id) {
            return;
        }
        match self.node() {
            ExprNode::Zero | ExprNode::One => {}
            ExprNode::Atom(s) => {
                out.insert(*s);
            }
            ExprNode::Add(l, r) | ExprNode::Mul(l, r) => {
                l.collect_atoms(out, seen);
                r.collect_atoms(out, seen);
            }
            ExprNode::Star(e) => e.collect_atoms(out, seen),
        }
    }

    /// Substitutes expressions for atoms (simultaneous substitution).
    ///
    /// Atoms not in `map` are left unchanged. This is the syntactic engine
    /// behind axiom-schema instantiation in `nka-core`. Memoized per
    /// distinct subterm, so substitution into a heavily shared
    /// expression is linear in its arena footprint.
    pub fn subst_atoms(&self, map: &HashMap<Symbol, Expr>) -> Expr {
        fn go(e: &Expr, map: &HashMap<Symbol, Expr>, memo: &mut HashMap<ExprId, Expr>) -> Expr {
            if let Some(&done) = memo.get(&e.id()) {
                return done;
            }
            let out = match e.node() {
                ExprNode::Zero | ExprNode::One => *e,
                ExprNode::Atom(s) => map.get(s).copied().unwrap_or(*e),
                ExprNode::Add(l, r) => go(l, map, memo).add(&go(r, map, memo)),
                ExprNode::Mul(l, r) => go(l, map, memo).mul(&go(r, map, memo)),
                ExprNode::Star(inner) => go(inner, map, memo).star(),
            };
            memo.insert(e.id(), out);
            out
        }
        go(self, map, &mut HashMap::new())
    }

    /// Whether the root is the constant `0`.
    pub fn is_zero(&self) -> bool {
        matches!(self.node(), ExprNode::Zero)
    }

    /// Whether the root is the constant `1`.
    pub fn is_one(&self) -> bool {
        matches!(self.node(), ExprNode::One)
    }

    /// A lightly simplified copy using only *sound* unit laws of NKA
    /// (`e+0 = e`, `e·1 = e`, `e·0 = 0`, `0* = 1`): the result is provably
    /// equal to the input in NKA. Note `e + e` is **not** collapsed — NKA
    /// has no idempotence. Memoized per distinct subterm.
    pub fn simplified(&self) -> Expr {
        fn go(e: &Expr, memo: &mut HashMap<ExprId, Expr>) -> Expr {
            if let Some(&done) = memo.get(&e.id()) {
                return done;
            }
            let out = match e.node() {
                ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => *e,
                ExprNode::Add(l, r) => {
                    let (l, r) = (go(l, memo), go(r, memo));
                    if l.is_zero() {
                        r
                    } else if r.is_zero() {
                        l
                    } else {
                        l.add(&r)
                    }
                }
                ExprNode::Mul(l, r) => {
                    let (l, r) = (go(l, memo), go(r, memo));
                    if l.is_zero() || r.is_zero() {
                        Expr::zero()
                    } else if l.is_one() {
                        r
                    } else if r.is_one() {
                        l
                    } else {
                        l.mul(&r)
                    }
                }
                ExprNode::Star(inner) => {
                    let inner = go(inner, memo);
                    if inner.is_zero() {
                        Expr::one()
                    } else {
                        inner.star()
                    }
                }
            };
            memo.insert(e.id(), out);
            out
        }
        go(self, &mut HashMap::new())
    }

    /// Iterates over all subterm positions in pre-order, calling `f` with
    /// the path (child indices from the root) and the subterm.
    pub fn visit_subterms<F: FnMut(&[usize], &Expr)>(&self, f: &mut F) {
        fn go<F: FnMut(&[usize], &Expr)>(e: &Expr, path: &mut Vec<usize>, f: &mut F) {
            f(path, e);
            match e.node() {
                ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => {}
                ExprNode::Add(l, r) | ExprNode::Mul(l, r) => {
                    path.push(0);
                    go(l, path, f);
                    path.pop();
                    path.push(1);
                    go(r, path, f);
                    path.pop();
                }
                ExprNode::Star(inner) => {
                    path.push(0);
                    go(inner, path, f);
                    path.pop();
                }
            }
        }
        go(self, &mut Vec::new(), f);
    }

    /// The subterm at `path` (child indices from the root), if the path is
    /// valid.
    pub fn subterm(&self, path: &[usize]) -> Option<&Expr> {
        let mut cur = self;
        for &i in path {
            cur = match (cur.node(), i) {
                (ExprNode::Add(l, _), 0) | (ExprNode::Mul(l, _), 0) => l,
                (ExprNode::Add(_, r), 1) | (ExprNode::Mul(_, r), 1) => r,
                (ExprNode::Star(e), 0) => e,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Replaces the subterm at `path` with `replacement`, returning the new
    /// expression; `None` if the path is invalid.
    pub fn replace_at(&self, path: &[usize], replacement: &Expr) -> Option<Expr> {
        if path.is_empty() {
            return Some(*replacement);
        }
        let (head, rest) = (path[0], &path[1..]);
        Some(match (self.node(), head) {
            (ExprNode::Add(l, r), 0) => l.replace_at(rest, replacement)?.add(r),
            (ExprNode::Add(l, r), 1) => l.add(&r.replace_at(rest, replacement)?),
            (ExprNode::Mul(l, r), 0) => l.replace_at(rest, replacement)?.mul(r),
            (ExprNode::Mul(l, r), 1) => l.mul(&r.replace_at(rest, replacement)?),
            (ExprNode::Star(e), 0) => e.replace_at(rest, replacement)?.star(),
            _ => return None,
        })
    }
}

impl Add for &Expr {
    type Output = Expr;
    fn add(self, rhs: &Expr) -> Expr {
        Expr::add(self, rhs)
    }
}

impl Mul for &Expr {
    type Output = Expr;
    fn mul(self, rhs: &Expr) -> Expr {
        Expr::mul(self, rhs)
    }
}

impl From<Symbol> for Expr {
    fn from(sym: Symbol) -> Expr {
        Expr::atom(sym)
    }
}

/// Compile-time proof of the API v2 thread-safety contract: handles into
/// the global arena move and share across threads.
#[allow(dead_code)]
fn _static_assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Expr>();
    check::<ExprId>();
    check::<ExprNode>();
}

/// Precedence levels for printing: `+` < `·` < `*`/atoms.
fn fmt_prec(e: &Expr, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    match e.node() {
        ExprNode::Zero => write!(f, "0"),
        ExprNode::One => write!(f, "1"),
        ExprNode::Atom(s) => write!(f, "{s}"),
        ExprNode::Add(l, r) => {
            let need_paren = prec > 0;
            if need_paren {
                write!(f, "(")?;
            }
            fmt_prec(l, f, 0)?;
            write!(f, " + ")?;
            // Sums print left-associatively, so a right operand that is
            // itself a sum needs parentheses to round-trip structurally.
            fmt_prec(r, f, 1)?;
            if need_paren {
                write!(f, ")")?;
            }
            Ok(())
        }
        ExprNode::Mul(l, r) => {
            let need_paren = prec > 1;
            if need_paren {
                write!(f, "(")?;
            }
            fmt_prec(l, f, 1)?;
            write!(f, " ")?;
            // Right operand of a product needs parens if it is itself a sum
            // or a product (we print left-associatively).
            fmt_prec(r, f, 2)?;
            if need_paren {
                write!(f, ")")?;
            }
            Ok(())
        }
        ExprNode::Star(inner) => {
            match inner.node() {
                ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => {
                    fmt_prec(inner, f, 2)?;
                }
                _ => {
                    write!(f, "(")?;
                    fmt_prec(inner, f, 0)?;
                    write!(f, ")")?;
                }
            }
            write!(f, "*")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_prec(self, f, 0)
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Expr({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Expr {
        Expr::atom_str(s)
    }

    #[test]
    fn display_respects_precedence() {
        let p = a("p");
        let q = a("q");
        let r = a("r");
        assert_eq!((&(&p + &q) * &r).to_string(), "(p + q) r");
        assert_eq!((&p + &(&q * &r)).to_string(), "p + q r");
        assert_eq!((&p * &q).star().to_string(), "(p q)*");
        assert_eq!(p.star().to_string(), "p*");
        assert_eq!((&p * &(&q * &r)).to_string(), "p (q r)");
    }

    #[test]
    fn roundtrip_display_parse() {
        for src in [
            "0",
            "1",
            "p",
            "p + q",
            "p q",
            "p*",
            "(p + q)*",
            "(m0 p)* m1",
            "(m0 p (m0 p + m1 1))* m1",
            "p (q r)",
            "(p + q) (r + s)",
        ] {
            let e: Expr = src.parse().unwrap();
            let printed = e.to_string();
            let reparsed: Expr = printed.parse().unwrap();
            assert_eq!(e, reparsed, "roundtrip failed for {src} -> {printed}");
        }
    }

    #[test]
    fn hash_consing_dedupes_equal_structure() {
        let e1: Expr = "(p q)* + r*".parse().unwrap();
        let e2 = &(&a("p") * &a("q")).star() + &a("r").star();
        assert_eq!(e1, e2);
        assert_eq!(e1.id(), e2.id());
        // Distinct structure, distinct id.
        let e3: Expr = "(q p)* + r*".parse().unwrap();
        assert_ne!(e1.id(), e3.id());
        // Handles resolve back through the arena.
        assert_eq!(Expr::from_id(e1.id()), Some(e1));
        assert!(interned_expr_count() >= e1.subterm_count());
    }

    #[test]
    fn constants_are_singletons() {
        assert_eq!(Expr::zero().id(), Expr::zero().id());
        assert_eq!(Expr::one().id(), Expr::one().id());
        assert_ne!(Expr::zero().id(), Expr::one().id());
        assert_eq!(Expr::zero(), "0".parse().unwrap());
        assert_eq!(Expr::one(), "1".parse().unwrap());
    }

    #[test]
    fn size_and_star_height() {
        let e: Expr = "(p q)* + r*".parse().unwrap();
        assert_eq!(e.size(), 7);
        assert_eq!(e.star_height(), 1);
        let nested: Expr = "((p*)* q)*".parse().unwrap();
        assert_eq!(nested.star_height(), 3);
    }

    #[test]
    fn subterm_count_sees_through_sharing() {
        // p + p: three tree nodes, two distinct subterms.
        let pp: Expr = "p + p".parse().unwrap();
        assert_eq!(pp.size(), 3);
        assert_eq!(pp.subterm_count(), 2);
        // Doubling via self-multiplication: tree size grows
        // exponentially, footprint linearly.
        let mut e = a("x");
        for _ in 0..20 {
            e = e.mul(&e);
        }
        assert_eq!(e.size(), (1 << 21) - 1);
        assert_eq!(e.subterm_count(), 21);
    }

    #[test]
    fn atoms_collected() {
        let e: Expr = "(m0 p)* m1 + 0 1".parse().unwrap();
        let mut names: Vec<String> = e.atoms().iter().map(|s| s.name()).collect();
        names.sort();
        assert_eq!(names, vec!["m0", "m1", "p"]);
    }

    #[test]
    fn substitution() {
        let e: Expr = "(x y)* x".parse().unwrap();
        let mut map = HashMap::new();
        map.insert(Symbol::intern("x"), "p q".parse().unwrap());
        map.insert(Symbol::intern("y"), Expr::one());
        let sub = e.subst_atoms(&map);
        assert_eq!(sub, "(p q 1)* (p q)".parse().unwrap());
    }

    #[test]
    fn simplification_is_unit_laws_only() {
        let e: Expr = "(p + 0) (1 q) + 0*".parse().unwrap();
        assert_eq!(e.simplified(), "p q + 1".parse().unwrap());
        // No idempotence: p + p must stay.
        let pp: Expr = "p + p".parse().unwrap();
        assert_eq!(pp.simplified(), pp);
    }

    #[test]
    fn paths_and_replacement() {
        let e: Expr = "(p q)* r".parse().unwrap();
        // (Mul (Star (Mul p q)) r): path [0,0,1] is q.
        assert_eq!(e.subterm(&[0, 0, 1]).unwrap(), &a("q"));
        let replaced = e.replace_at(&[0, 0, 1], &a("z")).unwrap();
        assert_eq!(replaced, "(p z)* r".parse().unwrap());
        assert!(e.subterm(&[5]).is_none());
        assert!(e.replace_at(&[1, 0], &a("z")).is_none());
    }

    #[test]
    fn visit_subterms_preorder() {
        let e: Expr = "p q*".parse().unwrap();
        let mut seen = Vec::new();
        e.visit_subterms(&mut |path, sub| seen.push((path.to_vec(), sub.to_string())));
        assert_eq!(
            seen,
            vec![
                (vec![], "p q*".to_string()),
                (vec![0], "p".to_string()),
                (vec![1], "q*".to_string()),
                (vec![1, 0], "q".to_string()),
            ]
        );
    }

    #[test]
    fn sum_and_product_helpers() {
        assert_eq!(Expr::sum(std::iter::empty()), Expr::zero());
        assert_eq!(Expr::product(std::iter::empty()), Expr::one());
        let e = Expr::sum([a("x"), a("y"), a("z")]);
        assert_eq!(e.to_string(), "x + y + z");
        let m = Expr::product([a("x"), a("y"), a("z")]);
        assert_eq!(m.to_string(), "x y z");
    }

    #[test]
    fn interning_is_thread_safe() {
        // Concurrent builders of the same terms agree on handles.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let e: Expr = "(m0 p)* m1 + (q r)*".parse().unwrap();
                    e.id()
                })
            })
            .collect();
        let ids: Vec<ExprId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
