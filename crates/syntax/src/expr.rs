//! The NKA expression tree.

use crate::Symbol;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::ops::{Add, Mul};
use std::rc::Rc;

/// The node of an [`Expr`] (Definition 2.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExprNode {
    /// The additive unit `0` (encodes `abort`).
    Zero,
    /// The multiplicative unit `1` (encodes `skip`).
    One,
    /// An atomic symbol `a ∈ Σ`.
    Atom(Symbol),
    /// A sum `e₁ + e₂`.
    Add(Expr, Expr),
    /// A product `e₁ · e₂` (sequential composition).
    Mul(Expr, Expr),
    /// Kleene star `e*`.
    Star(Expr),
}

/// An NKA expression over the global alphabet — an element of `ExpΣ`
/// (Definition 2.2 of the paper).
///
/// Expressions are immutable reference-counted trees: cloning is cheap and
/// subterm sharing keeps the paper's large derivations (Appendix C.7)
/// compact in memory. Equality is structural (α-identity of the term), *not*
/// NKA-provable equality — use the decision procedure in `nka-core` for the
/// latter.
///
/// # Examples
///
/// ```
/// use nka_syntax::Expr;
/// let p = Expr::atom_str("p");
/// let q = Expr::atom_str("q");
/// // (p + q)* built with operator sugar:
/// let e = (&p + &q).star();
/// assert_eq!(e.to_string(), "(p + q)*");
/// assert_eq!(e, "(p+q)*".parse()?);
/// # Ok::<(), nka_syntax::ParseExprError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Expr(Rc<ExprNode>);

impl Expr {
    /// The constant `0`.
    pub fn zero() -> Expr {
        Expr(Rc::new(ExprNode::Zero))
    }

    /// The constant `1`.
    pub fn one() -> Expr {
        Expr(Rc::new(ExprNode::One))
    }

    /// An atom for the given symbol.
    pub fn atom(sym: Symbol) -> Expr {
        Expr(Rc::new(ExprNode::Atom(sym)))
    }

    /// Convenience: intern `name` and wrap it as an atom.
    pub fn atom_str(name: &str) -> Expr {
        Expr::atom(Symbol::intern(name))
    }

    /// The sum `self + rhs` (no simplification; see [`Expr::simplified`]).
    pub fn add(&self, rhs: &Expr) -> Expr {
        Expr(Rc::new(ExprNode::Add(self.clone(), rhs.clone())))
    }

    /// The product `self · rhs`.
    pub fn mul(&self, rhs: &Expr) -> Expr {
        Expr(Rc::new(ExprNode::Mul(self.clone(), rhs.clone())))
    }

    /// The star `self*`.
    pub fn star(&self) -> Expr {
        Expr(Rc::new(ExprNode::Star(self.clone())))
    }

    /// Left-associated sum of `terms`; `0` for an empty iterator.
    pub fn sum<I: IntoIterator<Item = Expr>>(terms: I) -> Expr {
        let mut iter = terms.into_iter();
        match iter.next() {
            None => Expr::zero(),
            Some(first) => iter.fold(first, |acc, t| acc.add(&t)),
        }
    }

    /// Left-associated product of `factors`; `1` for an empty iterator.
    pub fn product<I: IntoIterator<Item = Expr>>(factors: I) -> Expr {
        let mut iter = factors.into_iter();
        match iter.next() {
            None => Expr::one(),
            Some(first) => iter.fold(first, |acc, t| acc.mul(&t)),
        }
    }

    /// A view of the root node.
    pub fn node(&self) -> &ExprNode {
        &self.0
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        match self.node() {
            ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => 1,
            ExprNode::Add(l, r) | ExprNode::Mul(l, r) => 1 + l.size() + r.size(),
            ExprNode::Star(e) => 1 + e.size(),
        }
    }

    /// Star-nesting depth (0 for star-free expressions).
    pub fn star_height(&self) -> usize {
        match self.node() {
            ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => 0,
            ExprNode::Add(l, r) | ExprNode::Mul(l, r) => l.star_height().max(r.star_height()),
            ExprNode::Star(e) => 1 + e.star_height(),
        }
    }

    /// The set of atoms occurring in the expression.
    pub fn atoms(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<Symbol>) {
        match self.node() {
            ExprNode::Zero | ExprNode::One => {}
            ExprNode::Atom(s) => {
                out.insert(*s);
            }
            ExprNode::Add(l, r) | ExprNode::Mul(l, r) => {
                l.collect_atoms(out);
                r.collect_atoms(out);
            }
            ExprNode::Star(e) => e.collect_atoms(out),
        }
    }

    /// Substitutes expressions for atoms (simultaneous substitution).
    ///
    /// Atoms not in `map` are left unchanged. This is the syntactic engine
    /// behind axiom-schema instantiation in `nka-core`.
    pub fn subst_atoms(&self, map: &HashMap<Symbol, Expr>) -> Expr {
        match self.node() {
            ExprNode::Zero | ExprNode::One => self.clone(),
            ExprNode::Atom(s) => map.get(s).cloned().unwrap_or_else(|| self.clone()),
            ExprNode::Add(l, r) => l.subst_atoms(map).add(&r.subst_atoms(map)),
            ExprNode::Mul(l, r) => l.subst_atoms(map).mul(&r.subst_atoms(map)),
            ExprNode::Star(e) => e.subst_atoms(map).star(),
        }
    }

    /// Whether the root is the constant `0`.
    pub fn is_zero(&self) -> bool {
        matches!(self.node(), ExprNode::Zero)
    }

    /// Whether the root is the constant `1`.
    pub fn is_one(&self) -> bool {
        matches!(self.node(), ExprNode::One)
    }

    /// A lightly simplified copy using only *sound* unit laws of NKA
    /// (`e+0 = e`, `e·1 = e`, `e·0 = 0`, `0* = 1`): the result is provably
    /// equal to the input in NKA. Note `e + e` is **not** collapsed — NKA
    /// has no idempotence.
    pub fn simplified(&self) -> Expr {
        match self.node() {
            ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => self.clone(),
            ExprNode::Add(l, r) => {
                let (l, r) = (l.simplified(), r.simplified());
                if l.is_zero() {
                    r
                } else if r.is_zero() {
                    l
                } else {
                    l.add(&r)
                }
            }
            ExprNode::Mul(l, r) => {
                let (l, r) = (l.simplified(), r.simplified());
                if l.is_zero() || r.is_zero() {
                    Expr::zero()
                } else if l.is_one() {
                    r
                } else if r.is_one() {
                    l
                } else {
                    l.mul(&r)
                }
            }
            ExprNode::Star(e) => {
                let e = e.simplified();
                if e.is_zero() {
                    Expr::one()
                } else {
                    e.star()
                }
            }
        }
    }

    /// Iterates over all subterm positions in pre-order, calling `f` with
    /// the path (child indices from the root) and the subterm.
    pub fn visit_subterms<F: FnMut(&[usize], &Expr)>(&self, f: &mut F) {
        fn go<F: FnMut(&[usize], &Expr)>(e: &Expr, path: &mut Vec<usize>, f: &mut F) {
            f(path, e);
            match e.node() {
                ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => {}
                ExprNode::Add(l, r) | ExprNode::Mul(l, r) => {
                    path.push(0);
                    go(l, path, f);
                    path.pop();
                    path.push(1);
                    go(r, path, f);
                    path.pop();
                }
                ExprNode::Star(inner) => {
                    path.push(0);
                    go(inner, path, f);
                    path.pop();
                }
            }
        }
        go(self, &mut Vec::new(), f);
    }

    /// The subterm at `path` (child indices from the root), if the path is
    /// valid.
    pub fn subterm(&self, path: &[usize]) -> Option<&Expr> {
        let mut cur = self;
        for &i in path {
            cur = match (cur.node(), i) {
                (ExprNode::Add(l, _), 0) | (ExprNode::Mul(l, _), 0) => l,
                (ExprNode::Add(_, r), 1) | (ExprNode::Mul(_, r), 1) => r,
                (ExprNode::Star(e), 0) => e,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Replaces the subterm at `path` with `replacement`, returning the new
    /// expression; `None` if the path is invalid.
    pub fn replace_at(&self, path: &[usize], replacement: &Expr) -> Option<Expr> {
        if path.is_empty() {
            return Some(replacement.clone());
        }
        let (head, rest) = (path[0], &path[1..]);
        Some(match (self.node(), head) {
            (ExprNode::Add(l, r), 0) => l.replace_at(rest, replacement)?.add(r),
            (ExprNode::Add(l, r), 1) => l.add(&r.replace_at(rest, replacement)?),
            (ExprNode::Mul(l, r), 0) => l.replace_at(rest, replacement)?.mul(r),
            (ExprNode::Mul(l, r), 1) => l.mul(&r.replace_at(rest, replacement)?),
            (ExprNode::Star(e), 0) => e.replace_at(rest, replacement)?.star(),
            _ => return None,
        })
    }
}

impl Add for &Expr {
    type Output = Expr;
    fn add(self, rhs: &Expr) -> Expr {
        Expr::add(self, rhs)
    }
}

impl Mul for &Expr {
    type Output = Expr;
    fn mul(self, rhs: &Expr) -> Expr {
        Expr::mul(self, rhs)
    }
}

impl From<Symbol> for Expr {
    fn from(sym: Symbol) -> Expr {
        Expr::atom(sym)
    }
}

/// Precedence levels for printing: `+` < `·` < `*`/atoms.
fn fmt_prec(e: &Expr, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    match e.node() {
        ExprNode::Zero => write!(f, "0"),
        ExprNode::One => write!(f, "1"),
        ExprNode::Atom(s) => write!(f, "{s}"),
        ExprNode::Add(l, r) => {
            let need_paren = prec > 0;
            if need_paren {
                write!(f, "(")?;
            }
            fmt_prec(l, f, 0)?;
            write!(f, " + ")?;
            // Sums print left-associatively, so a right operand that is
            // itself a sum needs parentheses to round-trip structurally.
            fmt_prec(r, f, 1)?;
            if need_paren {
                write!(f, ")")?;
            }
            Ok(())
        }
        ExprNode::Mul(l, r) => {
            let need_paren = prec > 1;
            if need_paren {
                write!(f, "(")?;
            }
            fmt_prec(l, f, 1)?;
            write!(f, " ")?;
            // Right operand of a product needs parens if it is itself a sum
            // or a product (we print left-associatively).
            fmt_prec(r, f, 2)?;
            if need_paren {
                write!(f, ")")?;
            }
            Ok(())
        }
        ExprNode::Star(inner) => {
            match inner.node() {
                ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => {
                    fmt_prec(inner, f, 2)?;
                }
                _ => {
                    write!(f, "(")?;
                    fmt_prec(inner, f, 0)?;
                    write!(f, ")")?;
                }
            }
            write!(f, "*")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_prec(self, f, 0)
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Expr({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Expr {
        Expr::atom_str(s)
    }

    #[test]
    fn display_respects_precedence() {
        let p = a("p");
        let q = a("q");
        let r = a("r");
        assert_eq!((&(&p + &q) * &r).to_string(), "(p + q) r");
        assert_eq!((&p + &(&q * &r)).to_string(), "p + q r");
        assert_eq!((&p * &q).star().to_string(), "(p q)*");
        assert_eq!(p.star().to_string(), "p*");
        assert_eq!((&p * &(&q * &r)).to_string(), "p (q r)");
    }

    #[test]
    fn roundtrip_display_parse() {
        for src in [
            "0",
            "1",
            "p",
            "p + q",
            "p q",
            "p*",
            "(p + q)*",
            "(m0 p)* m1",
            "(m0 p (m0 p + m1 1))* m1",
            "p (q r)",
            "(p + q) (r + s)",
        ] {
            let e: Expr = src.parse().unwrap();
            let printed = e.to_string();
            let reparsed: Expr = printed.parse().unwrap();
            assert_eq!(e, reparsed, "roundtrip failed for {src} -> {printed}");
        }
    }

    #[test]
    fn size_and_star_height() {
        let e: Expr = "(p q)* + r*".parse().unwrap();
        assert_eq!(e.size(), 7);
        assert_eq!(e.star_height(), 1);
        let nested: Expr = "((p*)* q)*".parse().unwrap();
        assert_eq!(nested.star_height(), 3);
    }

    #[test]
    fn atoms_collected() {
        let e: Expr = "(m0 p)* m1 + 0 1".parse().unwrap();
        let mut names: Vec<String> = e.atoms().iter().map(|s| s.name()).collect();
        names.sort();
        assert_eq!(names, vec!["m0", "m1", "p"]);
    }

    #[test]
    fn substitution() {
        let e: Expr = "(x y)* x".parse().unwrap();
        let mut map = HashMap::new();
        map.insert(Symbol::intern("x"), "p q".parse().unwrap());
        map.insert(Symbol::intern("y"), Expr::one());
        let sub = e.subst_atoms(&map);
        assert_eq!(sub, "(p q 1)* (p q)".parse().unwrap());
    }

    #[test]
    fn simplification_is_unit_laws_only() {
        let e: Expr = "(p + 0) (1 q) + 0*".parse().unwrap();
        assert_eq!(e.simplified(), "p q + 1".parse().unwrap());
        // No idempotence: p + p must stay.
        let pp: Expr = "p + p".parse().unwrap();
        assert_eq!(pp.simplified(), pp);
    }

    #[test]
    fn paths_and_replacement() {
        let e: Expr = "(p q)* r".parse().unwrap();
        // (Mul (Star (Mul p q)) r): path [0,0,1] is q.
        assert_eq!(e.subterm(&[0, 0, 1]).unwrap(), &a("q"));
        let replaced = e.replace_at(&[0, 0, 1], &a("z")).unwrap();
        assert_eq!(replaced, "(p z)* r".parse().unwrap());
        assert!(e.subterm(&[5]).is_none());
        assert!(e.replace_at(&[1, 0], &a("z")).is_none());
    }

    #[test]
    fn visit_subterms_preorder() {
        let e: Expr = "p q*".parse().unwrap();
        let mut seen = Vec::new();
        e.visit_subterms(&mut |path, sub| seen.push((path.to_vec(), sub.to_string())));
        assert_eq!(
            seen,
            vec![
                (vec![], "p q*".to_string()),
                (vec![0], "p".to_string()),
                (vec![1], "q*".to_string()),
                (vec![1, 0], "q".to_string()),
            ]
        );
    }

    #[test]
    fn sum_and_product_helpers() {
        assert_eq!(Expr::sum(std::iter::empty()), Expr::zero());
        assert_eq!(Expr::product(std::iter::empty()), Expr::one());
        let e = Expr::sum([a("x"), a("y"), a("z")]);
        assert_eq!(e.to_string(), "x + y + z");
        let m = Expr::product([a("x"), a("y"), a("z")]);
        assert_eq!(m.to_string(), "x y z");
    }
}
