//! Hash-consed NKA expressions with an epoch/scope arena lifecycle.
//!
//! Every distinct expression structure is interned exactly once; an
//! [`Expr`] is a 4-byte `Copy` handle (an [`ExprId`]), so `Eq`, `Hash`,
//! and `clone` are all O(1) and two expressions are structurally equal
//! *iff* their handles are equal. Since Arena lifecycle v1 the arena has
//! **two regions**:
//!
//! * the **persistent region** — process-global, lock-striped,
//!   append-only. Nodes live in atomically published pages, so resolving
//!   a persistent handle ([`Expr::node`]) takes no lock. Persistent ids
//!   are stable for the life of the process and may cross threads
//!   freely; everything interned outside a scratch scope lands here.
//! * the **scratch region** — thread-local and *reclaimable*. While a
//!   [`ScratchScope`] is open on a thread, newly seen structures intern
//!   into the scratch region instead of the global arena; when the scope
//!   is retired (dropped), their storage is truncated and reused by the
//!   next scope. This is what keeps a long-lived server's arena bounded
//!   by its *persistent* working set rather than by every transient term
//!   an auto-prover search ever materialized (see the soak test
//!   `tests/arena_soak.rs`).
//!
//! The lifecycle contract: a scratch handle is valid only on its owning
//! thread and only until its scope is retired. Anything that must
//! outlive the scope — a found proof, a result term — is rebuilt into
//! the persistent region with [`promote`] (or
//! [`ScratchScope::promote`]) before retirement. Resolving a retired
//! scratch id panics if the slot is gone, or silently aliases a later
//! scope's term if the slot was reused — a logic error the scope API is
//! designed to make hard to write. Downstream caches keyed on [`ExprId`]
//! (the `Decider` engine, session memos) observe [`scratch_epoch`] and
//! evict scratch-keyed entries when it advances, so retirement never
//! leaves dangling keys behind.
//!
//! Memory observability: [`interned_expr_count`] (persistent nodes),
//! [`scratch_live_nodes`], [`arena_resident_nodes`] (their sum), and
//! [`scratch_retired_total`] — surfaced through `Session::memory_stats`
//! and `nka --stats`.

use crate::Symbol;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash, RandomState};
use std::marker::PhantomData;
use std::ops::{Add, Mul};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The node of an [`Expr`] (Definition 2.2).
///
/// Children are themselves interned handles (ids), so a node is a few
/// machine words, `Copy`, and node equality/hashing is O(1) — the
/// property the hash-consing arena relies on to deduplicate bottom-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExprNode {
    /// The additive unit `0` (encodes `abort`).
    Zero,
    /// The multiplicative unit `1` (encodes `skip`).
    One,
    /// An atomic symbol `a ∈ Σ`.
    Atom(Symbol),
    /// A sum `e₁ + e₂`.
    Add(Expr, Expr),
    /// A product `e₁ · e₂` (sequential composition).
    Mul(Expr, Expr),
    /// Kleene star `e*`.
    Star(Expr),
}

/// The dense identity of an interned expression — the canonical name of
/// one element of `ExpΣ` (Definition 2.2 of the paper:
/// `e ::= 0 | 1 | a | e₁ + e₂ | e₁ · e₂ | e₁*`).
///
/// Because the arena deduplicates structurally (hash-consing), two
/// expressions denote the same id exactly when they are α-identical
/// terms of `ExpΣ`; the id is therefore a sound *and complete* key for
/// syntactic equality, and downstream caches (the `Decider` engine's
/// automaton, DFA, and verdict maps) key on it instead of on whole
/// trees. Note the identification is *syntactic* — NKA-provable
/// equality (`⊢NKA e = f`) is still the decision procedure's job.
///
/// Ids are `Copy`, 4 bytes, and totally ordered (arbitrarily but
/// consistently within a process), which makes normalized symmetric
/// cache keys like `(min(id₁, id₂), max(id₁, id₂))` trivial.
///
/// Since Arena lifecycle v1 the top bit distinguishes the two arena
/// regions: a **persistent** id (bit 31 clear) is stable for the life
/// of the process; a **scratch** id (bit 31 set, see
/// [`ExprId::is_scratch`]) belongs to the thread-local scratch region of
/// the [`ScratchScope`] that interned it and is reclaimed when that
/// scope is retired. Caches that key on ids must treat the two classes
/// differently: persistent keys are forever, scratch keys must be
/// evicted when [`scratch_epoch`] advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// The raw arena index. Stable for the life of the process for
    /// persistent ids; valid only while the owning scope lives for
    /// scratch ids.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Whether this id names a node in a thread-local scratch region
    /// (reclaimed on [`ScratchScope`] retirement) rather than the
    /// persistent arena.
    #[must_use]
    pub fn is_scratch(self) -> bool {
        self.0 & SCRATCH_BIT != 0
    }
}

/// An NKA expression over the global alphabet — an element of `ExpΣ`
/// (Definition 2.2 of the paper).
///
/// An `Expr` is a *hash-consed handle*: the expression structure lives
/// in an interning arena and the handle is `Copy` (a 4-byte
/// [`ExprId`]). Consequences:
///
/// * `==`, `Hash`, and `clone`/copy are **O(1)** — equality is id
///   equality, which coincides with structural (α-)identity of the term
///   by the hash-consing invariant;
/// * shared subterms are stored once, so the paper's large derivations
///   (Appendix C.7) stay compact in memory;
/// * `Expr: Send + Sync` — *persistent* expressions flow freely across
///   threads. Scratch expressions (built inside a [`ScratchScope`]) are
///   resolvable only on their owning thread and only until the scope is
///   retired; [`promote`] rebuilds them persistently.
///
/// Equality is structural, *not* NKA-provable equality — use the
/// decision procedure in `nka-core` for the latter.
///
/// # Examples
///
/// ```
/// use nka_syntax::Expr;
/// let p = Expr::atom_str("p");
/// let q = Expr::atom_str("q");
/// // (p + q)* built with operator sugar:
/// let e = (&p + &q).star();
/// assert_eq!(e.to_string(), "(p + q)*");
/// assert_eq!(e, "(p+q)*".parse()?);
/// // Hash-consing: rebuilding the same structure yields the same handle.
/// assert_eq!(e.id(), p.add(&q).star().id());
/// # Ok::<(), nka_syntax::ParseExprError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Expr {
    id: ExprId,
}

/// Number of lock stripes in the persistent arena. Interning hashes the
/// node to pick a stripe, so concurrent builders (e.g. the parallel
/// batch workers) contend only 1/16th of the time.
const SHARD_BITS: u32 = 4;
const SHARDS: usize = 1 << SHARD_BITS;
/// Bit 31 of an [`ExprId`] marks the thread-local scratch region;
/// persistent ids use bits 0..31 (`local_index << SHARD_BITS | shard`).
const SCRATCH_BIT: u32 = 1 << 31;
/// Per-stripe capacity of the persistent region.
const MAX_PER_SHARD: usize = 1 << (31 - SHARD_BITS);
/// Capacity of a thread's scratch region.
const MAX_SCRATCH: usize = (SCRATCH_BIT - 1) as usize;

/// Persistent nodes live in append-only pages of doubling size
/// (`FIRST_PAGE`, `FIRST_PAGE`·2, `FIRST_PAGE`·4, …) so a fixed, small
/// page table covers the whole id space and a published page never
/// moves — that is what makes [`Expr::node`] lock-free for persistent
/// handles.
const FIRST_PAGE_BITS: u32 = 9;
const FIRST_PAGE: u32 = 1 << FIRST_PAGE_BITS;
/// Pages 0..24 of doubling size cover well past `MAX_PER_SHARD`.
const MAX_PAGES: usize = 24;

/// Maps a shard-local index to its (page, offset) coordinates.
fn page_of(local: u32) -> (usize, usize) {
    let m = local + FIRST_PAGE;
    let page = m.ilog2() - FIRST_PAGE_BITS;
    let start = (1u32 << (FIRST_PAGE_BITS + page)) - FIRST_PAGE;
    (page as usize, (local - start) as usize)
}

fn page_capacity(page: usize) -> usize {
    1usize << (FIRST_PAGE_BITS as usize + page)
}

/// The write-side state of one stripe: the dedup map. `ids.len()` is
/// also the next free local index, since every insert goes through it.
struct ShardMap {
    ids: HashMap<ExprNode, u32>,
}

/// The read-side state of one stripe: atomically published node pages.
/// Writers (holding the stripe mutex) fill slots exactly once; readers
/// resolve ids with two acquire loads and no lock.
struct ShardStore {
    pages: [OnceLock<Box<[OnceLock<ExprNode>]>>; MAX_PAGES],
}

struct ExprPool {
    /// One fixed hasher instance so shard choice is a pure function of
    /// the node for the life of the process.
    hasher: RandomState,
    maps: [Mutex<ShardMap>; SHARDS],
    stores: [ShardStore; SHARDS],
}

fn pool() -> &'static ExprPool {
    static POOL: OnceLock<ExprPool> = OnceLock::new();
    POOL.get_or_init(|| ExprPool {
        hasher: RandomState::new(),
        maps: std::array::from_fn(|_| {
            Mutex::new(ShardMap {
                ids: HashMap::new(),
            })
        }),
        stores: std::array::from_fn(|_| ShardStore {
            pages: [const { OnceLock::new() }; MAX_PAGES],
        }),
    })
}

fn shard_of(pool: &ExprPool, node: &ExprNode) -> usize {
    (pool.hasher.hash_one(node) as usize) & (SHARDS - 1)
}

/// The thread-local scratch region: a truncatable arena for the terms a
/// [`ScratchScope`] interns. `nodes` is append-only while scopes are
/// open and truncated to the scope watermark on retirement, so slot
/// storage (and the dedup map) are *reused* across scopes — the
/// reclamation the append-only persistent region cannot offer.
struct ScratchRegion {
    nodes: Vec<ExprNode>,
    ids: HashMap<ExprNode, u32>,
}

/// Slots in the per-thread persistent-hit cache (power of two). The
/// warm working set this exists for (rebuilding already-interned terms,
/// e.g. the paper's Fig. 2 programs) is tens of nodes, so a small
/// direct-mapped table has essentially no conflict misses there while
/// costing ~10 KiB per interning thread.
const INTERN_CACHE_SLOTS: usize = 512;

/// One slot of the persistent-hit cache: a node plus the raw id
/// `intern_global` answered for it.
type PersistentHitSlot = Cell<Option<(ExprNode, u32)>>;

/// The per-thread scratch state. The live-scope count sits in a [`Cell`]
/// *outside* the region's [`RefCell`] so the overwhelmingly common
/// no-scope intern — every build outside a [`ScratchScope`] — costs one
/// plain load before heading straight to the persistent arena, instead
/// of a `borrow_mut`/drop round-trip on the `RefCell` (the
/// `intern/fig2_warm` cold-probe regression).
struct ScratchTls {
    /// Number of live scopes on this thread.
    depth: Cell<u32>,
    region: RefCell<ScratchRegion>,
    /// Direct-mapped memo of recent **persistent** intern results,
    /// probed before the lock-striped global pool when no scope is
    /// open. Soundness: hash-consing makes `node → id` a pure function
    /// and persistent ids are stable for the life of the process, so a
    /// cached pair can never go stale — a conflict eviction only costs
    /// a fall-through to [`intern_global`]. This is what makes the warm
    /// re-intern path lock-free: one cheap mix plus an array compare
    /// instead of two SipHash passes and a stripe mutex.
    persistent_hits: Box<[PersistentHitSlot]>,
}

thread_local! {
    static SCRATCH: ScratchTls = ScratchTls {
        depth: Cell::new(0),
        region: RefCell::new(ScratchRegion {
            nodes: Vec::new(),
            ids: HashMap::new(),
        }),
        persistent_hits: (0..INTERN_CACHE_SLOTS).map(|_| Cell::new(None)).collect(),
    };
}

/// Slot choice for the thread-local persistent-hit cache. Deliberately
/// *not* the dedup map's `RandomState`: a collision here only demotes a
/// probe to the global pool, so two multiply–xor rounds over the node's
/// raw words beat a full SipHash pass on the warm path.
fn persistent_hit_slot(node: &ExprNode) -> usize {
    let (tag, a, b) = match *node {
        ExprNode::Zero => (0u32, 0, 0),
        ExprNode::One => (1, 0, 0),
        ExprNode::Atom(s) => (2, s.id(), 0),
        ExprNode::Add(l, r) => (3, l.id.0, r.id.0),
        ExprNode::Mul(l, r) => (4, l.id.0, r.id.0),
        ExprNode::Star(e) => (5, e.id.0, 0),
    };
    let mut h = tag.wrapping_mul(0x9E37_79B9);
    h = (h ^ a).wrapping_mul(0x85EB_CA6B);
    h = (h ^ b.rotate_left(16)).wrapping_mul(0xC2B2_AE35);
    h ^= h >> 16;
    (h as usize) & (INTERN_CACHE_SLOTS - 1)
}

/// Scratch nodes currently live across all threads.
static SCRATCH_LIVE: AtomicUsize = AtomicUsize::new(0);
/// Scratch nodes retired (reclaimed) since process start.
static SCRATCH_RETIRED: AtomicU64 = AtomicU64::new(0);
/// Scopes retired since process start; doubles as the cache-invalidation
/// epoch for scratch-keyed downstream caches.
static SCRATCH_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Whether `node` directly references a scratch subterm. Persistent
/// nodes must never do so — a persistent id outlives every scope, so a
/// scratch child would dangle.
fn has_scratch_child(node: &ExprNode) -> bool {
    match node {
        ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => false,
        ExprNode::Add(l, r) | ExprNode::Mul(l, r) => l.id.is_scratch() || r.id.is_scratch(),
        ExprNode::Star(e) => e.id.is_scratch(),
    }
}

/// Interns `node` into the **persistent** region, bypassing any open
/// scratch scope.
///
/// # Panics
///
/// Panics if `node` references scratch subterms (promote them first), if
/// a stripe exceeds its capacity, or if a stripe mutex was poisoned by a
/// panic on another thread.
fn intern_global(node: ExprNode) -> Expr {
    assert!(
        !has_scratch_child(&node),
        "a persistent expression cannot reference scratch subterms; \
         promote them with nka_syntax::promote before the scope retires"
    );
    let pool = pool();
    let shard_idx = shard_of(pool, &node);
    let mut map = pool.maps[shard_idx]
        .lock()
        .expect("expression interner poisoned");
    if let Some(&local) = map.ids.get(&node) {
        return Expr {
            id: ExprId((local << SHARD_BITS) | shard_idx as u32),
        };
    }
    let local = map.ids.len();
    assert!(local < MAX_PER_SHARD, "expression arena overflow");
    let local = local as u32;
    let (page, offset) = page_of(local);
    let slots = pool.stores[shard_idx].pages[page].get_or_init(|| {
        (0..page_capacity(page))
            .map(|_| OnceLock::new())
            .collect::<Vec<_>>()
            .into_boxed_slice()
    });
    slots[offset]
        .set(node)
        .expect("fresh persistent arena slot written twice");
    map.ids.insert(node, local);
    Expr {
        id: ExprId((local << SHARD_BITS) | shard_idx as u32),
    }
}

/// Read-only probe of the persistent region.
fn global_probe(node: &ExprNode) -> Option<Expr> {
    let pool = pool();
    let shard_idx = shard_of(pool, node);
    let map = pool.maps[shard_idx]
        .lock()
        .expect("expression interner poisoned");
    map.ids.get(node).map(|&local| Expr {
        id: ExprId((local << SHARD_BITS) | shard_idx as u32),
    })
}

/// Resolves a persistent id to its node: two acquire loads, no lock.
fn global_node(raw: u32) -> ExprNode {
    let shard_idx = (raw as usize) & (SHARDS - 1);
    let (page, offset) = page_of(raw >> SHARD_BITS);
    *pool().stores[shard_idx].pages[page]
        .get()
        .and_then(|slots| slots[offset].get())
        .expect("persistent ExprId does not resolve (forged id?)")
}

/// Interns `node`, returning its unique handle.
///
/// Resolution order: with no [`ScratchScope`] open on this thread, the
/// thread's persistent-hit cache is probed first (lock-free; sound
/// because persistent ids never move or retire), then the persistent
/// arena — no scratch borrow at all. Under an open scope: the thread's
/// scratch region first (so a term first seen as scratch keeps one
/// identity for the scope's life), then the persistent region; a miss
/// interns into the scratch region.
fn intern(node: ExprNode) -> Expr {
    SCRATCH.with(|tls| {
        if tls.depth.get() == 0 {
            let slot = &tls.persistent_hits[persistent_hit_slot(&node)];
            if let Some((cached, raw)) = slot.get() {
                if cached == node {
                    return Expr { id: ExprId(raw) };
                }
            }
            let e = intern_global(node);
            slot.set(Some((node, e.id.0)));
            return e;
        }
        let mut region = tls.region.borrow_mut();
        if let Some(&idx) = region.ids.get(&node) {
            return Expr {
                id: ExprId(SCRATCH_BIT | idx),
            };
        }
        if let Some(hit) = global_probe(&node) {
            return hit;
        }
        let idx = region.nodes.len();
        assert!(idx < MAX_SCRATCH, "scratch arena overflow");
        region.nodes.push(node);
        region.ids.insert(node, idx as u32);
        SCRATCH_LIVE.fetch_add(1, Ordering::Relaxed);
        Expr {
            id: ExprId(SCRATCH_BIT | idx as u32),
        }
    })
}

/// A RAII scratch scope: while alive, newly seen structures interned on
/// this thread land in the thread-local scratch region; dropping the
/// scope **retires** them — their storage is truncated for reuse and
/// [`scratch_epoch`] advances so id-keyed caches can evict.
///
/// Scopes nest LIFO (enforced at retirement). Terms that must outlive
/// the scope are rebuilt persistently with [`ScratchScope::promote`].
/// The auto-prover wraps each proof search in one scope, which is what
/// keeps `Prove` traffic from growing the process arena.
///
/// # Examples
///
/// ```
/// use nka_syntax::{arena_resident_nodes, Expr, ScratchScope};
/// let resident = arena_resident_nodes();
/// let kept = {
///     let scope = ScratchScope::enter();
///     let transient: Expr = "(x y)* x y x".parse()?;
///     assert!(transient.id().is_scratch());
///     scope.promote(&transient.star())
/// };
/// // The scope retired its scratch; only the promoted term persists.
/// assert!(!kept.id().is_scratch());
/// assert!(arena_resident_nodes() <= resident + kept.subterm_count());
/// # Ok::<(), nka_syntax::ParseExprError>(())
/// ```
pub struct ScratchScope {
    watermark: usize,
    depth: u32,
    /// Scratch regions are thread-local; the scope must retire on the
    /// thread that opened it.
    _not_send: PhantomData<*const ()>,
}

impl ScratchScope {
    /// Opens a scratch scope on the current thread.
    #[must_use]
    pub fn enter() -> ScratchScope {
        SCRATCH.with(|tls| {
            let depth = tls.depth.get() + 1;
            tls.depth.set(depth);
            ScratchScope {
                watermark: tls.region.borrow().nodes.len(),
                depth,
                _not_send: PhantomData,
            }
        })
    }

    /// Scratch nodes this scope (and any nested scopes) have interned so
    /// far.
    #[must_use]
    pub fn live_nodes(&self) -> usize {
        SCRATCH.with(|tls| tls.region.borrow().nodes.len() - self.watermark)
    }

    /// Rebuilds `e` into the persistent arena so it survives this
    /// scope's retirement. See [`promote`].
    #[must_use]
    pub fn promote(&self, e: &Expr) -> Expr {
        promote(e)
    }
}

impl Drop for ScratchScope {
    fn drop(&mut self) {
        SCRATCH.with(|tls| {
            // LIFO misuse (e.g. scopes swapped across an early drop)
            // would silently retire a live scope's terms; fail loudly
            // instead — unless we are already unwinding, where drop
            // order is LIFO by construction and a double panic aborts.
            if tls.depth.get() != self.depth && !std::thread::panicking() {
                panic!(
                    "ScratchScope retired out of LIFO order \
                     (depth {} live, this scope is level {})",
                    tls.depth.get(),
                    self.depth
                );
            }
            tls.depth.set(self.depth - 1);
            let mut region = tls.region.borrow_mut();
            let retired = region.nodes.len().saturating_sub(self.watermark);
            if retired > 0 {
                region.nodes.truncate(self.watermark);
                let watermark = self.watermark;
                region.ids.retain(|_, idx| (*idx as usize) < watermark);
                SCRATCH_LIVE.fetch_sub(retired, Ordering::Relaxed);
                SCRATCH_RETIRED.fetch_add(retired as u64, Ordering::Relaxed);
                SCRATCH_EPOCH.fetch_add(1, Ordering::Release);
            }
        });
    }
}

/// Rebuilds `e` into the **persistent** region, returning the
/// equivalent persistent handle (memoized per distinct subterm, so the
/// cost is linear in `e`'s arena footprint). Persistent inputs come
/// back unchanged; scratch inputs must still be live. This is how
/// results that outlive a [`ScratchScope`] — found proofs, promoted
/// lemmas — escape retirement.
///
/// Note the promoted handle is a *persistent twin*: while the scope is
/// still open, the original scratch handle stays live and in-scope
/// rebuilds of the same structure keep resolving to the scratch id, so
/// the twin compares `!=` to them (handle equality is per-region
/// identity). Promote at the scope boundary — as the prover does — and
/// let the scratch ids retire, rather than mixing the two on one
/// code path.
#[must_use]
pub fn promote(e: &Expr) -> Expr {
    promote_memoized(e, &mut HashMap::new())
}

/// [`promote`] threading a caller-held memo, for promoting many
/// expressions that share subterms (e.g. every term mentioned by a
/// proof tree): each distinct subterm is rebuilt once across the whole
/// traversal instead of once per mention.
#[must_use]
pub fn promote_memoized(e: &Expr, memo: &mut HashMap<ExprId, Expr>) -> Expr {
    fn go(e: Expr, memo: &mut HashMap<ExprId, Expr>) -> Expr {
        if !e.id.is_scratch() {
            return e;
        }
        if let Some(&done) = memo.get(&e.id) {
            return done;
        }
        let out = match e.node() {
            ExprNode::Zero => Expr::zero(),
            ExprNode::One => Expr::one(),
            ExprNode::Atom(s) => intern_global(ExprNode::Atom(s)),
            ExprNode::Add(l, r) => intern_global(ExprNode::Add(go(l, memo), go(r, memo))),
            ExprNode::Mul(l, r) => intern_global(ExprNode::Mul(go(l, memo), go(r, memo))),
            ExprNode::Star(inner) => intern_global(ExprNode::Star(go(inner, memo))),
        };
        memo.insert(e.id, out);
        out
    }
    go(*e, memo)
}

/// Number of distinct expressions in the **persistent** region — the
/// arena footprint that survives every scratch scope. Monotone;
/// observable via `nka --stats` and the CI memory-soak gate.
#[must_use]
pub fn interned_expr_count() -> usize {
    pool()
        .maps
        .iter()
        .map(|s| s.lock().expect("expression interner poisoned").ids.len())
        .sum()
}

/// Scratch nodes currently live (unretired) across all threads.
#[must_use]
pub fn scratch_live_nodes() -> usize {
    SCRATCH_LIVE.load(Ordering::Relaxed)
}

/// Total resident arena nodes: persistent plus live scratch. This is
/// the number a bounded-memory serving process watches.
#[must_use]
pub fn arena_resident_nodes() -> usize {
    interned_expr_count() + scratch_live_nodes()
}

/// Scratch nodes retired (storage reclaimed) since process start. The
/// gap between this and [`interned_expr_count`]'s growth is the memory
/// the scope lifecycle saved.
#[must_use]
pub fn scratch_retired_total() -> u64 {
    SCRATCH_RETIRED.load(Ordering::Relaxed)
}

/// The scratch-retirement epoch: advances every time a scope retires
/// nodes, on any thread. Caches keyed on [`ExprId`] snapshot this and
/// evict their scratch-keyed entries when it moves — retired ids are
/// reused by later scopes, so a stale scratch key would otherwise alias
/// a different term.
#[must_use]
pub fn scratch_epoch() -> u64 {
    SCRATCH_EPOCH.load(Ordering::Acquire)
}

impl Expr {
    /// The constant `0`. Always persistent.
    pub fn zero() -> Expr {
        static ZERO: OnceLock<Expr> = OnceLock::new();
        *ZERO.get_or_init(|| intern_global(ExprNode::Zero))
    }

    /// The constant `1`. Always persistent.
    pub fn one() -> Expr {
        static ONE: OnceLock<Expr> = OnceLock::new();
        *ONE.get_or_init(|| intern_global(ExprNode::One))
    }

    /// An atom for the given symbol.
    pub fn atom(sym: Symbol) -> Expr {
        intern(ExprNode::Atom(sym))
    }

    /// Convenience: intern `name` and wrap it as an atom.
    pub fn atom_str(name: &str) -> Expr {
        Expr::atom(Symbol::intern(name))
    }

    /// The sum `self + rhs` (no simplification; see [`Expr::simplified`]).
    pub fn add(&self, rhs: &Expr) -> Expr {
        intern(ExprNode::Add(*self, *rhs))
    }

    /// The product `self · rhs`.
    pub fn mul(&self, rhs: &Expr) -> Expr {
        intern(ExprNode::Mul(*self, *rhs))
    }

    /// The star `self*`.
    pub fn star(&self) -> Expr {
        intern(ExprNode::Star(*self))
    }

    /// Left-associated sum of `terms`; `0` for an empty iterator.
    pub fn sum<I: IntoIterator<Item = Expr>>(terms: I) -> Expr {
        let mut iter = terms.into_iter();
        match iter.next() {
            None => Expr::zero(),
            Some(first) => iter.fold(first, |acc, t| acc.add(&t)),
        }
    }

    /// Left-associated product of `factors`; `1` for an empty iterator.
    pub fn product<I: IntoIterator<Item = Expr>>(factors: I) -> Expr {
        let mut iter = factors.into_iter();
        match iter.next() {
            None => Expr::one(),
            Some(first) => iter.fold(first, |acc, t| acc.mul(&t)),
        }
    }

    /// The interned identity of this expression. Equal ids ⇔ equal
    /// (α-identical) terms; see [`ExprId`].
    #[must_use]
    pub fn id(&self) -> ExprId {
        self.id
    }

    /// Resolves an id back to its expression, if it is currently
    /// resolvable: persistent ids resolve once interned in this
    /// process; scratch ids only on their owning thread while their
    /// scope is live (a retired slot returns `None` until reused).
    #[must_use]
    pub fn from_id(id: ExprId) -> Option<Expr> {
        if id.is_scratch() {
            let idx = (id.0 & !SCRATCH_BIT) as usize;
            SCRATCH.with(|tls| (idx < tls.region.borrow().nodes.len()).then_some(Expr { id }))
        } else {
            let shard_idx = (id.0 as usize) & (SHARDS - 1);
            let local = (id.0 >> SHARD_BITS) as usize;
            let map = pool().maps[shard_idx]
                .lock()
                .expect("expression interner poisoned");
            (local < map.ids.len()).then_some(Expr { id })
        }
    }

    /// The root node, by value (nodes are a few `Copy` words).
    /// Persistent handles resolve lock-free; scratch handles read the
    /// owning thread's scratch region.
    ///
    /// # Panics
    ///
    /// Panics on a *stale* scratch handle — one whose [`ScratchScope`]
    /// has been retired (promote what must outlive the scope), or one
    /// that crossed to a thread that does not own it.
    pub fn node(&self) -> ExprNode {
        let raw = self.id.0;
        if raw & SCRATCH_BIT == 0 {
            return global_node(raw);
        }
        let idx = (raw & !SCRATCH_BIT) as usize;
        SCRATCH.with(|tls| match tls.region.borrow().nodes.get(idx) {
            Some(&node) => node,
            None => panic!(
                "stale scratch ExprId {idx}: its ScratchScope was retired (or the handle \
                 crossed threads); promote expressions that must outlive their scope"
            ),
        })
    }

    /// Number of nodes in the expression read as a *tree* (shared
    /// subterms counted with multiplicity, saturating at `usize::MAX`).
    ///
    /// Computed by a memoized walk over the interned DAG, so deeply
    /// shared expressions (whose tree reading is exponentially larger
    /// than their arena footprint) still cost linear time.
    pub fn size(&self) -> usize {
        fn go(e: Expr, memo: &mut HashMap<ExprId, usize>) -> usize {
            if let Some(&n) = memo.get(&e.id) {
                return n;
            }
            let n = match e.node() {
                ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => 1,
                ExprNode::Add(l, r) | ExprNode::Mul(l, r) => 1usize
                    .saturating_add(go(l, memo))
                    .saturating_add(go(r, memo)),
                ExprNode::Star(e) => 1usize.saturating_add(go(e, memo)),
            };
            memo.insert(e.id, n);
            n
        }
        go(*self, &mut HashMap::new())
    }

    /// Number of *distinct* interned subterms of this expression
    /// (itself included) — its true arena footprint, as opposed to the
    /// tree reading of [`Expr::size`]. The gap between the two is the
    /// sharing the hash-consing arena recovered.
    pub fn subterm_count(&self) -> usize {
        let mut seen = HashSet::new();
        self.collect_subterm_ids(&mut seen);
        seen.len()
    }

    /// Inserts the ids of all distinct subterms (self included) into
    /// `out`. Exposed so callers can take unions across several
    /// expressions (e.g. per-query footprint accounting in the API).
    pub fn collect_subterm_ids(&self, out: &mut HashSet<ExprId>) {
        if !out.insert(self.id) {
            return;
        }
        match self.node() {
            ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => {}
            ExprNode::Add(l, r) | ExprNode::Mul(l, r) => {
                l.collect_subterm_ids(out);
                r.collect_subterm_ids(out);
            }
            ExprNode::Star(e) => e.collect_subterm_ids(out),
        }
    }

    /// Star-nesting depth (0 for star-free expressions). Memoized over
    /// the interned DAG like [`Expr::size`].
    pub fn star_height(&self) -> usize {
        fn go(e: Expr, memo: &mut HashMap<ExprId, usize>) -> usize {
            if let Some(&n) = memo.get(&e.id) {
                return n;
            }
            let n = match e.node() {
                ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => 0,
                ExprNode::Add(l, r) | ExprNode::Mul(l, r) => go(l, memo).max(go(r, memo)),
                ExprNode::Star(e) => 1 + go(e, memo),
            };
            memo.insert(e.id, n);
            n
        }
        go(*self, &mut HashMap::new())
    }

    /// The set of atoms occurring in the expression.
    pub fn atoms(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        let mut seen = HashSet::new();
        self.collect_atoms(&mut out, &mut seen);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<Symbol>, seen: &mut HashSet<ExprId>) {
        if !seen.insert(self.id) {
            return;
        }
        match self.node() {
            ExprNode::Zero | ExprNode::One => {}
            ExprNode::Atom(s) => {
                out.insert(s);
            }
            ExprNode::Add(l, r) | ExprNode::Mul(l, r) => {
                l.collect_atoms(out, seen);
                r.collect_atoms(out, seen);
            }
            ExprNode::Star(e) => e.collect_atoms(out, seen),
        }
    }

    /// Substitutes expressions for atoms (simultaneous substitution).
    ///
    /// Atoms not in `map` are left unchanged. This is the syntactic engine
    /// behind axiom-schema instantiation in `nka-core`. Memoized per
    /// distinct subterm, so substitution into a heavily shared
    /// expression is linear in its arena footprint.
    pub fn subst_atoms(&self, map: &HashMap<Symbol, Expr>) -> Expr {
        fn go(e: Expr, map: &HashMap<Symbol, Expr>, memo: &mut HashMap<ExprId, Expr>) -> Expr {
            if let Some(&done) = memo.get(&e.id()) {
                return done;
            }
            let out = match e.node() {
                ExprNode::Zero | ExprNode::One => e,
                ExprNode::Atom(s) => map.get(&s).copied().unwrap_or(e),
                ExprNode::Add(l, r) => go(l, map, memo).add(&go(r, map, memo)),
                ExprNode::Mul(l, r) => go(l, map, memo).mul(&go(r, map, memo)),
                ExprNode::Star(inner) => go(inner, map, memo).star(),
            };
            memo.insert(e.id(), out);
            out
        }
        go(*self, map, &mut HashMap::new())
    }

    /// Whether the root is the constant `0`.
    pub fn is_zero(&self) -> bool {
        matches!(self.node(), ExprNode::Zero)
    }

    /// Whether the root is the constant `1`.
    pub fn is_one(&self) -> bool {
        matches!(self.node(), ExprNode::One)
    }

    /// A lightly simplified copy using only *sound* unit laws of NKA
    /// (`e+0 = e`, `e·1 = e`, `e·0 = 0`, `0* = 1`): the result is provably
    /// equal to the input in NKA. Note `e + e` is **not** collapsed — NKA
    /// has no idempotence. Memoized per distinct subterm.
    pub fn simplified(&self) -> Expr {
        fn go(e: Expr, memo: &mut HashMap<ExprId, Expr>) -> Expr {
            if let Some(&done) = memo.get(&e.id()) {
                return done;
            }
            let out = match e.node() {
                ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => e,
                ExprNode::Add(l, r) => {
                    let (l, r) = (go(l, memo), go(r, memo));
                    if l.is_zero() {
                        r
                    } else if r.is_zero() {
                        l
                    } else {
                        l.add(&r)
                    }
                }
                ExprNode::Mul(l, r) => {
                    let (l, r) = (go(l, memo), go(r, memo));
                    if l.is_zero() || r.is_zero() {
                        Expr::zero()
                    } else if l.is_one() {
                        r
                    } else if r.is_one() {
                        l
                    } else {
                        l.mul(&r)
                    }
                }
                ExprNode::Star(inner) => {
                    let inner = go(inner, memo);
                    if inner.is_zero() {
                        Expr::one()
                    } else {
                        inner.star()
                    }
                }
            };
            memo.insert(e.id(), out);
            out
        }
        go(*self, &mut HashMap::new())
    }

    /// Iterates over all subterm positions in pre-order, calling `f` with
    /// the path (child indices from the root) and the subterm.
    pub fn visit_subterms<F: FnMut(&[usize], &Expr)>(&self, f: &mut F) {
        fn go<F: FnMut(&[usize], &Expr)>(e: Expr, path: &mut Vec<usize>, f: &mut F) {
            f(path, &e);
            match e.node() {
                ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => {}
                ExprNode::Add(l, r) | ExprNode::Mul(l, r) => {
                    path.push(0);
                    go(l, path, f);
                    path.pop();
                    path.push(1);
                    go(r, path, f);
                    path.pop();
                }
                ExprNode::Star(inner) => {
                    path.push(0);
                    go(inner, path, f);
                    path.pop();
                }
            }
        }
        go(*self, &mut Vec::new(), f);
    }

    /// The subterm at `path` (child indices from the root), if the path is
    /// valid.
    pub fn subterm(&self, path: &[usize]) -> Option<Expr> {
        let mut cur = *self;
        for &i in path {
            cur = match (cur.node(), i) {
                (ExprNode::Add(l, _), 0) | (ExprNode::Mul(l, _), 0) => l,
                (ExprNode::Add(_, r), 1) | (ExprNode::Mul(_, r), 1) => r,
                (ExprNode::Star(e), 0) => e,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Replaces the subterm at `path` with `replacement`, returning the new
    /// expression; `None` if the path is invalid.
    pub fn replace_at(&self, path: &[usize], replacement: &Expr) -> Option<Expr> {
        if path.is_empty() {
            return Some(*replacement);
        }
        let (head, rest) = (path[0], &path[1..]);
        Some(match (self.node(), head) {
            (ExprNode::Add(l, r), 0) => l.replace_at(rest, replacement)?.add(&r),
            (ExprNode::Add(l, r), 1) => l.add(&r.replace_at(rest, replacement)?),
            (ExprNode::Mul(l, r), 0) => l.replace_at(rest, replacement)?.mul(&r),
            (ExprNode::Mul(l, r), 1) => l.mul(&r.replace_at(rest, replacement)?),
            (ExprNode::Star(e), 0) => e.replace_at(rest, replacement)?.star(),
            _ => return None,
        })
    }
}

impl Add for &Expr {
    type Output = Expr;
    fn add(self, rhs: &Expr) -> Expr {
        Expr::add(self, rhs)
    }
}

impl Mul for &Expr {
    type Output = Expr;
    fn mul(self, rhs: &Expr) -> Expr {
        Expr::mul(self, rhs)
    }
}

impl From<Symbol> for Expr {
    fn from(sym: Symbol) -> Expr {
        Expr::atom(sym)
    }
}

/// Compile-time proof of the API v2 thread-safety contract: handles move
/// and share across threads. (Scratch handles additionally resolve only
/// on their owning thread — a runtime, not a type-level, property.)
#[allow(dead_code)]
fn _static_assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Expr>();
    check::<ExprId>();
    check::<ExprNode>();
}

/// Precedence levels for printing: `+` < `·` < `*`/atoms.
fn fmt_prec(e: &Expr, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    match e.node() {
        ExprNode::Zero => write!(f, "0"),
        ExprNode::One => write!(f, "1"),
        ExprNode::Atom(s) => write!(f, "{s}"),
        ExprNode::Add(l, r) => {
            let need_paren = prec > 0;
            if need_paren {
                write!(f, "(")?;
            }
            fmt_prec(&l, f, 0)?;
            write!(f, " + ")?;
            // Sums print left-associatively, so a right operand that is
            // itself a sum needs parentheses to round-trip structurally.
            fmt_prec(&r, f, 1)?;
            if need_paren {
                write!(f, ")")?;
            }
            Ok(())
        }
        ExprNode::Mul(l, r) => {
            let need_paren = prec > 1;
            if need_paren {
                write!(f, "(")?;
            }
            fmt_prec(&l, f, 1)?;
            write!(f, " ")?;
            // Right operand of a product needs parens if it is itself a sum
            // or a product (we print left-associatively).
            fmt_prec(&r, f, 2)?;
            if need_paren {
                write!(f, ")")?;
            }
            Ok(())
        }
        ExprNode::Star(inner) => {
            match inner.node() {
                ExprNode::Zero | ExprNode::One | ExprNode::Atom(_) => {
                    fmt_prec(&inner, f, 2)?;
                }
                _ => {
                    write!(f, "(")?;
                    fmt_prec(&inner, f, 0)?;
                    write!(f, ")")?;
                }
            }
            write!(f, "*")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_prec(self, f, 0)
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Expr({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Expr {
        Expr::atom_str(s)
    }

    #[test]
    fn display_respects_precedence() {
        let p = a("p");
        let q = a("q");
        let r = a("r");
        assert_eq!((&(&p + &q) * &r).to_string(), "(p + q) r");
        assert_eq!((&p + &(&q * &r)).to_string(), "p + q r");
        assert_eq!((&p * &q).star().to_string(), "(p q)*");
        assert_eq!(p.star().to_string(), "p*");
        assert_eq!((&p * &(&q * &r)).to_string(), "p (q r)");
    }

    #[test]
    fn roundtrip_display_parse() {
        for src in [
            "0",
            "1",
            "p",
            "p + q",
            "p q",
            "p*",
            "(p + q)*",
            "(m0 p)* m1",
            "(m0 p (m0 p + m1 1))* m1",
            "p (q r)",
            "(p + q) (r + s)",
        ] {
            let e: Expr = src.parse().unwrap();
            let printed = e.to_string();
            let reparsed: Expr = printed.parse().unwrap();
            assert_eq!(e, reparsed, "roundtrip failed for {src} -> {printed}");
        }
    }

    #[test]
    fn hash_consing_dedupes_equal_structure() {
        let e1: Expr = "(p q)* + r*".parse().unwrap();
        let e2 = &(&a("p") * &a("q")).star() + &a("r").star();
        assert_eq!(e1, e2);
        assert_eq!(e1.id(), e2.id());
        // Distinct structure, distinct id.
        let e3: Expr = "(q p)* + r*".parse().unwrap();
        assert_ne!(e1.id(), e3.id());
        // Handles resolve back through the arena.
        assert_eq!(Expr::from_id(e1.id()), Some(e1));
        assert!(interned_expr_count() >= e1.subterm_count());
    }

    #[test]
    fn constants_are_singletons() {
        assert_eq!(Expr::zero().id(), Expr::zero().id());
        assert_eq!(Expr::one().id(), Expr::one().id());
        assert_ne!(Expr::zero().id(), Expr::one().id());
        assert_eq!(Expr::zero(), "0".parse().unwrap());
        assert_eq!(Expr::one(), "1".parse().unwrap());
    }

    #[test]
    fn size_and_star_height() {
        let e: Expr = "(p q)* + r*".parse().unwrap();
        assert_eq!(e.size(), 7);
        assert_eq!(e.star_height(), 1);
        let nested: Expr = "((p*)* q)*".parse().unwrap();
        assert_eq!(nested.star_height(), 3);
    }

    #[test]
    fn subterm_count_sees_through_sharing() {
        // p + p: three tree nodes, two distinct subterms.
        let pp: Expr = "p + p".parse().unwrap();
        assert_eq!(pp.size(), 3);
        assert_eq!(pp.subterm_count(), 2);
        // Doubling via self-multiplication: tree size grows
        // exponentially, footprint linearly.
        let mut e = a("x");
        for _ in 0..20 {
            e = e.mul(&e);
        }
        assert_eq!(e.size(), (1 << 21) - 1);
        assert_eq!(e.subterm_count(), 21);
    }

    #[test]
    fn atoms_collected() {
        let e: Expr = "(m0 p)* m1 + 0 1".parse().unwrap();
        let mut names: Vec<String> = e.atoms().iter().map(|s| s.name()).collect();
        names.sort();
        assert_eq!(names, vec!["m0", "m1", "p"]);
    }

    #[test]
    fn substitution() {
        let e: Expr = "(x y)* x".parse().unwrap();
        let mut map = HashMap::new();
        map.insert(Symbol::intern("x"), "p q".parse().unwrap());
        map.insert(Symbol::intern("y"), Expr::one());
        let sub = e.subst_atoms(&map);
        assert_eq!(sub, "(p q 1)* (p q)".parse().unwrap());
    }

    #[test]
    fn simplification_is_unit_laws_only() {
        let e: Expr = "(p + 0) (1 q) + 0*".parse().unwrap();
        assert_eq!(e.simplified(), "p q + 1".parse().unwrap());
        // No idempotence: p + p must stay.
        let pp: Expr = "p + p".parse().unwrap();
        assert_eq!(pp.simplified(), pp);
    }

    #[test]
    fn paths_and_replacement() {
        let e: Expr = "(p q)* r".parse().unwrap();
        // (Mul (Star (Mul p q)) r): path [0,0,1] is q.
        assert_eq!(e.subterm(&[0, 0, 1]).unwrap(), a("q"));
        let replaced = e.replace_at(&[0, 0, 1], &a("z")).unwrap();
        assert_eq!(replaced, "(p z)* r".parse().unwrap());
        assert!(e.subterm(&[5]).is_none());
        assert!(e.replace_at(&[1, 0], &a("z")).is_none());
    }

    #[test]
    fn visit_subterms_preorder() {
        let e: Expr = "p q*".parse().unwrap();
        let mut seen = Vec::new();
        e.visit_subterms(&mut |path, sub| seen.push((path.to_vec(), sub.to_string())));
        assert_eq!(
            seen,
            vec![
                (vec![], "p q*".to_string()),
                (vec![0], "p".to_string()),
                (vec![1], "q*".to_string()),
                (vec![1, 0], "q".to_string()),
            ]
        );
    }

    #[test]
    fn sum_and_product_helpers() {
        assert_eq!(Expr::sum(std::iter::empty()), Expr::zero());
        assert_eq!(Expr::product(std::iter::empty()), Expr::one());
        let e = Expr::sum([a("x"), a("y"), a("z")]);
        assert_eq!(e.to_string(), "x + y + z");
        let m = Expr::product([a("x"), a("y"), a("z")]);
        assert_eq!(m.to_string(), "x y z");
    }

    #[test]
    fn interning_is_thread_safe() {
        // Concurrent builders of the same terms agree on handles.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let e: Expr = "(m0 p)* m1 + (q r)*".parse().unwrap();
                    e.id()
                })
            })
            .collect();
        let ids: Vec<ExprId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    /// The scratch counters (`scratch_live_nodes`, …) are process-global
    /// and only scope-using tests touch them; serialize those tests so
    /// their exact-count assertions don't race each other.
    fn scope_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn scratch_scope_reclaims_new_terms() {
        let _serial = scope_test_lock();
        // Persistent baseline terms, so the scope has something global
        // to dedup against.
        let base: Expr = "scrA scrB".parse().unwrap();
        let live_before = scratch_live_nodes();
        let retired_before = scratch_retired_total();
        {
            let scope = ScratchScope::enter();
            // Known structure stays persistent even inside the scope.
            let again: Expr = "scrA scrB".parse().unwrap();
            assert_eq!(again, base);
            assert!(!again.id().is_scratch());
            // New structure goes to scratch and dedups within the scope.
            let s1 = base.star();
            let s2 = base.star();
            assert!(s1.id().is_scratch());
            assert_eq!(s1, s2);
            assert_eq!(s1.to_string(), "(scrA scrB)*");
            assert_eq!(scope.live_nodes(), 1);
            assert_eq!(scratch_live_nodes(), live_before + 1);
        }
        // Retirement reclaimed every scratch node and advanced the epoch.
        assert_eq!(scratch_live_nodes(), live_before);
        assert_eq!(scratch_retired_total(), retired_before + 1);
    }

    #[test]
    fn promote_survives_retirement() {
        let _serial = scope_test_lock();
        let epoch_before = scratch_epoch();
        let kept = {
            let scope = ScratchScope::enter();
            let t: Expr = "prA (prB + prA)".parse().unwrap();
            assert!(t.id().is_scratch());
            scope.promote(&t)
        };
        assert!(!kept.id().is_scratch());
        assert!(scratch_epoch() > epoch_before);
        // The promoted term is fully resolvable after retirement.
        assert_eq!(kept.to_string(), "prA (prB + prA)");
        assert_eq!(kept, "prA (prB + prA)".parse().unwrap());
        assert!(!kept.subterm(&[1]).unwrap().id().is_scratch());
    }

    #[test]
    fn scopes_nest_lifo_and_truncate_to_watermarks() {
        let _serial = scope_test_lock();
        let outer = ScratchScope::enter();
        let t_outer = a("nestX").add(&a("nestY"));
        assert!(t_outer.id().is_scratch());
        let live_at_inner = scratch_live_nodes();
        {
            let _inner = ScratchScope::enter();
            let t_inner = t_outer.mul(&t_outer).star();
            assert!(t_inner.id().is_scratch());
            assert!(scratch_live_nodes() > live_at_inner);
        }
        // Inner retirement reclaimed only the inner terms.
        assert_eq!(scratch_live_nodes(), live_at_inner);
        assert_eq!(t_outer.to_string(), "nestX + nestY");
        drop(outer);
    }

    #[test]
    fn stale_scratch_ids_do_not_resolve() {
        let _serial = scope_test_lock();
        let id = {
            let _scope = ScratchScope::enter();
            let t = a("staleP").add(&a("staleQ")).star();
            assert!(t.id().is_scratch());
            assert_eq!(Expr::from_id(t.id()), Some(t));
            t.id()
        };
        assert_eq!(Expr::from_id(id), None);
    }

    #[test]
    fn rebuilding_scratch_structure_after_retirement_is_persistent() {
        // A term first seen as scratch gets a fresh persistent identity
        // when rebuilt after the scope — and stays self-consistent.
        let _serial = scope_test_lock();
        {
            let _scope = ScratchScope::enter();
            let t: Expr = "rebA rebB rebC".parse().unwrap();
            assert!(t.id().is_scratch());
        }
        let t: Expr = "rebA rebB rebC".parse().unwrap();
        assert!(!t.id().is_scratch());
        assert_eq!(t, "rebA rebB rebC".parse().unwrap());
    }
}
