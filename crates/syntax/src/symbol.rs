//! Interned alphabet symbols.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned symbol of the alphabet Σ.
///
/// Symbols are process-global: interning the same name twice yields the same
/// symbol, so expressions built in different modules of a verification task
/// share their alphabet, exactly as the paper's encoder settings assume
/// (Definition 4.4 requires `E` to be injective, which global interning
/// gives for free).
///
/// # Examples
///
/// ```
/// use nka_syntax::Symbol;
/// let m0 = Symbol::intern("m0");
/// assert_eq!(m0, Symbol::intern("m0"));
/// assert_eq!(m0.name(), "m0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            ids: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its unique symbol.
    ///
    /// # Panics
    ///
    /// Panics if the process-global interner mutex is poisoned (only
    /// possible after a panic while interning on another thread).
    pub fn intern(name: &str) -> Symbol {
        let mut table = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = table.ids.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(table.names.len()).expect("symbol table overflow");
        table.names.push(name.to_owned());
        table.ids.insert(name.to_owned(), id);
        Symbol(id)
    }

    /// The interned name.
    pub fn name(&self) -> String {
        let table = interner().lock().expect("symbol interner poisoned");
        table.names[self.0 as usize].clone()
    }

    /// A dense, process-unique numeric id (useful as an array index).
    pub fn id(&self) -> u32 {
        self.0
    }

    /// Number of distinct names interned process-wide. Monotone: the
    /// symbol table is append-only (unlike the expression arena it has
    /// no scratch region), so this is the observability surface for
    /// its growth under distinct-name traffic — soak-tested and
    /// bounded in `tests/arena_soak.rs`.
    pub fn interned_count() -> usize {
        interner()
            .lock()
            .expect("symbol interner poisoned")
            .names
            .len()
    }

    /// Total bytes of interned name text, counting both copies the
    /// table holds (the id→name vector and the name→id map key). A
    /// lower bound on the table's heap footprint — map/vec overhead
    /// adds a small constant per name on top.
    pub fn interned_bytes() -> usize {
        let table = interner().lock().expect("symbol interner poisoned");
        2 * table.names.iter().map(String::len).sum::<usize>()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("interning_test_a");
        let b = Symbol::intern("interning_test_b");
        assert_ne!(a, b);
        assert_eq!(a, Symbol::intern("interning_test_a"));
        assert_eq!(a.name(), "interning_test_a");
    }

    #[test]
    fn ordering_is_total() {
        let a = Symbol::intern("order_x");
        let b = Symbol::intern("order_y");
        assert!(a < b || b < a);
    }
}
