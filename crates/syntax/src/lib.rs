//! Syntax of NKA expressions (Definition 2.2 of Peng–Ying–Wu, PLDI 2022).
//!
//! An expression over an alphabet Σ is
//!
//! ```text
//! e ::= 0 | 1 | a | e₁ + e₂ | e₁ · e₂ | e₁*        (a ∈ Σ)
//! ```
//!
//! This crate provides interned [`Symbol`]s, the hash-consed [`Expr`]
//! handle over a process-global arena (API v2: `Copy` handles with O(1)
//! equality/hashing, identified by [`ExprId`]), a parser (multiplication
//! by juxtaposition, as written in the paper), a precedence-aware
//! pretty-printer, [`Word`]s over Σ, and a random expression generator
//! used by the test suites and benchmarks of the downstream crates.
//!
//! # Examples
//!
//! ```
//! use nka_syntax::Expr;
//!
//! // Enc(while M[q]=1 do P done) = (m1 p)* m0   — Section 4.2 of the paper.
//! let loop_enc: Expr = "(m1 p)* m0".parse()?;
//! assert_eq!(loop_enc.to_string(), "(m1 p)* m0");
//! assert_eq!(loop_enc.size(), 6);
//! # Ok::<(), nka_syntax::ParseExprError>(())
//! ```

mod expr;
mod generator;
mod parser;
mod symbol;
mod word;

pub use expr::{
    arena_resident_nodes, interned_expr_count, promote, promote_memoized, scratch_epoch,
    scratch_live_nodes, scratch_retired_total, Expr, ExprId, ExprNode, ScratchScope,
};
pub use generator::{random_expr, ExprGenConfig};
pub use parser::{render_caret, ParseExprError};
pub use symbol::Symbol;
pub use word::Word;
