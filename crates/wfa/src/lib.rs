//! Weighted finite automata and the decision procedure for the equational
//! theory of NKA (Remark 2.1 / Theorem A.6 of Peng–Ying–Wu, PLDI 2022).
//!
//! By Theorem A.6, `⊢NKA e = f` iff the rational power series `{{e}}` and
//! `{{f}}` over `N̄ = N ∪ {∞}` coincide. This crate decides that equality:
//!
//! 1. **Thompson construction** ([`thompson()`]): expression → ε-WFA over `N̄`
//!    whose path weights sum to the series coefficients (with multiplicity —
//!    this is where non-idempotence lives).
//! 2. **ε-elimination** ([`EpsWfa::eliminate_epsilon`]): Kleene's all-pairs
//!    algebraic-path algorithm computes the star of the ε-matrix using the
//!    `N̄` scalar star (`0* = 1`, `n* = ∞`), producing an ε-free [`Wfa`].
//! 3. **∞-support** ([`Wfa::infinity_support`]): the words with coefficient
//!    `∞` form a regular language (a word has finitely many accepting paths
//!    in an ε-free automaton, so its coefficient is `∞` iff some accepting
//!    path crosses an `∞` weight); supports are compared as DFAs.
//! 4. **Finite part** ([`Wfa::rational_part`] + [`zeroness`]): with `∞`
//!    edges removed, the automaton is N-weighted and embeds in Q; the
//!    difference automaton is restricted to the complement of the ∞-support
//!    and tested for zeroness with the forward-basis (Tzeng/Schützenberger)
//!    algorithm over **exact rationals**.
//!
//! **Star-free** pairs — loop-free program encodings — never reach this
//! pipeline: their series have finite support and finite coefficients, so
//! the tiered fast path in [`starfree`] decides them by prefix
//! normalization and finite word-multiset comparison, falling back here
//! only past its size budget.
//!
//! The top-level entry point for a single query is [`decide::decide_eq`];
//! repeated queries should go through the memoizing, budgeted
//! [`engine::Decider`], which owns the resource policy ([`DecideOptions`])
//! and caches compiled automata, determinized DFAs, and verdicts.
//!
//! # Examples
//!
//! ```
//! use nka_wfa::decide::decide_eq;
//! use nka_syntax::Expr;
//!
//! let lhs: Expr = "(p q)* p".parse()?;
//! let rhs: Expr = "p (q p)*".parse()?;
//! assert!(decide_eq(&lhs, &rhs)?);           // sliding — a theorem
//!
//! let idem: Expr = "p + p".parse()?;
//! let p: Expr = "p".parse()?;
//! assert!(!decide_eq(&idem, &p)?);           // idempotence — not a theorem
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod automaton;
pub mod decide;
pub mod engine;
pub mod ka;
pub mod matrix;
pub mod nfa;
pub mod starfree;
pub mod thompson;
pub mod zeroness;

pub use automaton::Wfa;
pub use decide::{decide_eq, DecideError, DecideOptions};
pub use engine::{Decider, DeciderStats};
pub use ka::{ka_equiv, saturate};
pub use thompson::{thompson, EpsWfa};
