//! The decision procedure for the equational theory of NKA.
//!
//! `⊢NKA e = f  ⇔  {{e}} = {{f}}` (Theorem A.6), and series equality is
//! decided by comparing ∞-supports as regular languages and finite parts as
//! Q-weighted automata. See the crate documentation for the pipeline.

use crate::engine::Decider;
use crate::nfa::DeterminizeOverflow;
use nka_syntax::Expr;
use std::fmt;

/// Error raised by [`decide_eq`] when a resource bound is exceeded.
///
/// The equational theory of NKA is PSPACE-hard (Remark 2.1): subset
/// construction on the ∞-support can blow up exponentially. The procedure
/// is exact whenever it answers; this error reports that it ran out of its
/// state budget instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecideError {
    overflow: DeterminizeOverflow,
}

impl fmt::Display for DecideError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NKA decision procedure out of budget: {}", self.overflow)
    }
}

impl std::error::Error for DecideError {}

impl From<DeterminizeOverflow> for DecideError {
    fn from(overflow: DeterminizeOverflow) -> Self {
        DecideError { overflow }
    }
}

/// Options for [`decide_eq_with`].
#[derive(Debug, Clone)]
pub struct DecideOptions {
    /// State budget for each subset construction (default 100 000).
    pub max_dfa_states: usize,
    /// Use the unsound `f64` zeroness check instead of exact rationals.
    /// Benchmark-ablation only; see `DESIGN.md`.
    pub float_ablation: bool,
    /// Entry budget for the star-free fast path (`crate::starfree`):
    /// a star-free query whose word multisets would exceed this many
    /// distinct words per map falls back to the generic automaton
    /// pipeline. `0` disables the fast path entirely — every query
    /// takes the generic path, which differential tests use to force
    /// the two pipelines against each other. Default 8192.
    pub starfree_max_words: usize,
}

impl Default for DecideOptions {
    fn default() -> Self {
        DecideOptions {
            max_dfa_states: 100_000,
            float_ablation: false,
            starfree_max_words: 8192,
        }
    }
}

/// Decides `⊢NKA e = f`.
///
/// # Errors
///
/// Returns [`DecideError`] if the subset construction exceeds the default
/// state budget; use [`decide_eq_with`] to raise it.
///
/// # Examples
///
/// ```
/// use nka_wfa::decide_eq;
/// use nka_syntax::Expr;
///
/// // product-star (Figure 2a): 1 + p(qp)*q = (pq)*
/// let lhs: Expr = "1 + p (q p)* q".parse()?;
/// let rhs: Expr = "(p q)*".parse()?;
/// assert!(decide_eq(&lhs, &rhs)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn decide_eq(e: &Expr, f: &Expr) -> Result<bool, DecideError> {
    decide_eq_with(e, f, &DecideOptions::default())
}

/// [`decide_eq`] with explicit resource options.
///
/// This is a one-shot convenience over [`Decider`]: it builds a fresh
/// engine, decides, and throws the caches away. Callers with more than one
/// query should hold a [`Decider`] and reuse it.
///
/// # Errors
///
/// Returns [`DecideError`] if a subset construction exceeds
/// `opts.max_dfa_states`.
pub fn decide_eq_with(e: &Expr, f: &Expr, opts: &DecideOptions) -> Result<bool, DecideError> {
    Decider::with_options(opts.clone()).decide(e, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq(l: &str, r: &str) -> bool {
        decide_eq(&l.parse().unwrap(), &r.parse().unwrap()).unwrap()
    }

    #[test]
    fn semiring_axioms_hold() {
        assert!(eq("p + (q + r)", "(p + q) + r"));
        assert!(eq("p + q", "q + p"));
        assert!(eq("p + 0", "p"));
        assert!(eq("p (q r)", "(p q) r"));
        assert!(eq("1 p", "p"));
        assert!(eq("p 1", "p"));
        assert!(eq("0 p", "0"));
        assert!(eq("p 0", "0"));
        assert!(eq("p (q + r)", "p q + p r"));
        assert!(eq("(p + q) r", "p r + q r"));
    }

    #[test]
    fn figure_2a_theorems_hold() {
        assert!(eq("1 + p p*", "p*"));
        assert!(eq("1 + p* p", "p*"));
        assert!(eq("1 + p (q p)* q", "(p q)*"));
        assert!(eq("(p q)* p", "p (q p)*"));
        assert!(eq("(p + q)*", "(p* q)* p*"));
        assert!(eq("(p + q)*", "p* (q p*)*"));
    }

    #[test]
    fn figure_2b_theorems_hold() {
        assert!(eq("(p p)* (1 + p)", "p*"));
    }

    #[test]
    fn ka_only_laws_fail() {
        // The idempotent law and its consequences are NOT NKA theorems.
        assert!(!eq("p + p", "p"));
        assert!(!eq("p* p*", "p*"));
        assert!(!eq("(p*)*", "p*"));
        assert!(!eq("1 + 1", "1"));
    }

    #[test]
    fn infinite_coefficient_expressions() {
        assert!(eq("1* 1*", "1*"));
        assert!(eq("1*", "1* + 1"));
        assert!(eq("1*", "1* + 1*"));
        assert!(!eq("1* p", "p"));
        assert!(eq("1* p", "1* p + p"));
        // Divergence in different "directions" must be distinguished
        // (cf. Remark 3.1: Σ|0⟩⟨0| vs Σ|1⟩⟨1|).
        assert!(!eq("1* p", "1* q"));
        assert!(!eq("1* p + q", "p + 1* q"));
    }

    #[test]
    fn star_height_two() {
        assert!(eq("((p)*)* q", "1* (p* q)")); // hmm-check via oracle below
    }

    #[test]
    fn non_theorems_with_close_series() {
        assert!(!eq("(p q)*", "(q p)*"));
        assert!(!eq("p q", "q p"));
        assert!(!eq("p* q*", "q* p*"));
    }

    #[test]
    fn decision_agrees_with_truncated_series_oracle() {
        use nka_series::eval;
        use nka_syntax::{random_expr, ExprGenConfig};

        let alphabet = vec![
            nka_syntax::Symbol::intern("a"),
            nka_syntax::Symbol::intern("b"),
        ];
        let config = ExprGenConfig::new(alphabet.clone()).with_target_size(8);
        let mut seed = 0x5EED_1234_5678_9ABC;
        let mut exprs = Vec::new();
        for _ in 0..40 {
            exprs.push(random_expr(&config, &mut seed));
        }
        for i in 0..exprs.len() {
            for j in i..exprs.len() {
                let decided = decide_eq(&exprs[i], &exprs[j]).unwrap();
                let se = eval(&exprs[i], &alphabet, 4);
                let sf = eval(&exprs[j], &alphabet, 4);
                if decided {
                    assert_eq!(
                        se, sf,
                        "decision said equal but truncated series differ: {} vs {}",
                        exprs[i], exprs[j]
                    );
                } else if se != sf {
                    // Consistent: truly different.
                } else {
                    // The oracle cannot refute at this truncation; nothing
                    // to check (the decision procedure may see longer words).
                }
            }
        }
    }
}
