//! Thompson construction: expression → ε-WFA over `N̄`.
//!
//! The construction is the classical one, read *quantitatively*: the series
//! recognized by the automaton assigns to each word the (possibly infinite)
//! sum of path weights over **all** accepting paths, counted with
//! multiplicity. For Thompson automata every edge has weight 1, so the
//! coefficient of `w` is the number of accepting runs — which coincides
//! with `{{e}}[w]` by a routine induction on `e` (each run corresponds to
//! one way of deriving `w` from the expression). Multiplicity is exactly
//! what distinguishes NKA from KA: `1 + 1` has *two* ε-runs.

use crate::automaton::Wfa;
use crate::matrix::SMatrix;
use nka_semiring::{ExtNat, Semiring, StarSemiring};
use nka_syntax::{Expr, ExprNode, Symbol};
use std::collections::BTreeMap;

/// A weighted automaton over `N̄` with ε-transitions, as produced by the
/// Thompson construction. Convert to an ε-free [`Wfa`] with
/// [`EpsWfa::eliminate_epsilon`].
#[derive(Debug, Clone)]
pub struct EpsWfa {
    state_count: usize,
    start: usize,
    accept: usize,
    /// `(from, to)` ε-edges, each of weight 1 (parallel edges allowed).
    eps_edges: Vec<(usize, usize)>,
    /// `(from, symbol, to)` letter edges, each of weight 1.
    sym_edges: Vec<(usize, Symbol, usize)>,
}

impl EpsWfa {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// The number of ε-edges (useful for size statistics in benchmarks).
    pub fn eps_edge_count(&self) -> usize {
        self.eps_edges.len()
    }

    /// Eliminates ε-transitions, producing an equivalent ε-free [`Wfa`].
    ///
    /// Computes the star `E*` of the ε-weight matrix with Kleene's all-pairs
    /// algebraic-path algorithm (Floyd–Warshall shape, scalar star of `N̄`
    /// at the pivot). ε-cycles of weight ≥ 1 correctly produce `∞` entries,
    /// which is how expressions like `1*` acquire infinite coefficients.
    ///
    /// # Panics
    ///
    /// Panics if a *finite* ε-path count overflows `u64` (requires ~2⁶⁴
    /// parallel ε-paths; unreachable for expressions of any realistic size).
    pub fn eliminate_epsilon(&self) -> Wfa<ExtNat> {
        let n = self.state_count;
        // W[i][j] accumulates the weight of all nonempty ε-paths i→j whose
        // intermediate states are among those already pivoted.
        let mut w = SMatrix::<ExtNat>::zeros(n, n);
        for &(i, j) in &self.eps_edges {
            w[(i, j)] += ExtNat::from(1u64);
        }
        for k in 0..n {
            let skk = w[(k, k)].star();
            let row_k: Vec<ExtNat> = (0..n).map(|j| w[(k, j)]).collect();
            let col_k: Vec<ExtNat> = (0..n).map(|i| w[(i, k)]).collect();
            for i in 0..n {
                if col_k[i].is_zero() {
                    continue;
                }
                let left = col_k[i] * skk;
                for j in 0..n {
                    w[(i, j)] += left * row_k[j];
                }
            }
        }
        // closure = E* = I + W
        let mut closure = w;
        for i in 0..n {
            closure[(i, i)] += ExtNat::from(1u64);
        }

        // Initial row: ι^T E*  (ι = unit at start).
        let initial: Vec<ExtNat> = (0..n).map(|j| closure[(self.start, j)]).collect();
        // Final column: unit at accept.
        let mut final_weights = vec![ExtNat::zero_const(); n];
        final_weights[self.accept] = ExtNat::from(1u64);

        // Per-symbol matrices: M'_a = M_a · E*.
        let mut raw: BTreeMap<Symbol, SMatrix<ExtNat>> = BTreeMap::new();
        for &(i, a, j) in &self.sym_edges {
            let m = raw.entry(a).or_insert_with(|| SMatrix::zeros(n, n));
            m[(i, j)] += ExtNat::from(1u64);
        }
        let transitions = raw.into_iter().map(|(a, m)| (a, m.mul(&closure))).collect();

        Wfa::new(n, initial, final_weights, transitions)
    }
}

/// Builds the Thompson ε-WFA of an expression.
///
/// # Examples
///
/// ```
/// use nka_wfa::thompson;
/// use nka_syntax::Expr;
/// let e: Expr = "(a b)*".parse()?;
/// let auto = thompson(&e);
/// assert!(auto.state_count() >= 4);
/// # Ok::<(), nka_syntax::ParseExprError>(())
/// ```
pub fn thompson(expr: &Expr) -> EpsWfa {
    let mut builder = Builder {
        state_count: 0,
        eps_edges: Vec::new(),
        sym_edges: Vec::new(),
    };
    let (start, accept) = builder.build(expr);
    EpsWfa {
        state_count: builder.state_count,
        start,
        accept,
        eps_edges: builder.eps_edges,
        sym_edges: builder.sym_edges,
    }
}

struct Builder {
    state_count: usize,
    eps_edges: Vec<(usize, usize)>,
    sym_edges: Vec<(usize, Symbol, usize)>,
}

impl Builder {
    fn fresh(&mut self) -> usize {
        let s = self.state_count;
        self.state_count += 1;
        s
    }

    fn build(&mut self, expr: &Expr) -> (usize, usize) {
        match expr.node() {
            ExprNode::Zero => {
                let s = self.fresh();
                let t = self.fresh();
                (s, t)
            }
            ExprNode::One => {
                let s = self.fresh();
                let t = self.fresh();
                self.eps_edges.push((s, t));
                (s, t)
            }
            ExprNode::Atom(a) => {
                let s = self.fresh();
                let t = self.fresh();
                self.sym_edges.push((s, a, t));
                (s, t)
            }
            ExprNode::Add(l, r) => {
                let (ls, la) = self.build(&l);
                let (rs, ra) = self.build(&r);
                let s = self.fresh();
                let t = self.fresh();
                self.eps_edges.push((s, ls));
                self.eps_edges.push((s, rs));
                self.eps_edges.push((la, t));
                self.eps_edges.push((ra, t));
                (s, t)
            }
            ExprNode::Mul(l, r) => {
                let (ls, la) = self.build(&l);
                let (rs, ra) = self.build(&r);
                self.eps_edges.push((la, rs));
                (ls, ra)
            }
            ExprNode::Star(inner) => {
                let (is, ia) = self.build(&inner);
                let s = self.fresh();
                let t = self.fresh();
                self.eps_edges.push((s, is)); // enter the loop
                self.eps_edges.push((ia, is)); // iterate
                self.eps_edges.push((s, t)); // zero iterations
                self.eps_edges.push((ia, t)); // exit
                (s, t)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nka_syntax::Word;

    fn coeff(src: &str, word: &[&str]) -> ExtNat {
        let e: Expr = src.parse().unwrap();
        let wfa = thompson(&e).eliminate_epsilon();
        let w = Word::from_symbols(word.iter().map(|n| Symbol::intern(n)));
        wfa.coefficient(&w)
    }

    #[test]
    fn constants() {
        assert_eq!(coeff("0", &[]), ExtNat::from(0u64));
        assert_eq!(coeff("1", &[]), ExtNat::from(1u64));
        assert_eq!(coeff("a", &["a"]), ExtNat::from(1u64));
        assert_eq!(coeff("a", &[]), ExtNat::from(0u64));
        assert_eq!(coeff("a", &["b"]), ExtNat::from(0u64));
    }

    #[test]
    fn multiplicity_of_sum() {
        assert_eq!(coeff("1 + 1", &[]), ExtNat::from(2u64));
        assert_eq!(coeff("a + a + a", &["a"]), ExtNat::from(3u64));
    }

    #[test]
    fn star_of_one_is_infinite() {
        assert_eq!(coeff("1*", &[]), ExtNat::INFINITY);
        assert_eq!(coeff("(1 + 1)*", &[]), ExtNat::INFINITY);
    }

    #[test]
    fn plain_star_counts_one_run_per_word() {
        for n in 0..5 {
            let word: Vec<&str> = std::iter::repeat_n("a", n).collect();
            assert_eq!(coeff("a*", &word), ExtNat::from(1u64), "a^{n}");
        }
    }

    #[test]
    fn branching_star_counts_exponentially() {
        // {{(a + a)*}}[a^n] = 2^n.
        for n in 0..6u32 {
            let word: Vec<&str> = std::iter::repeat_n("a", n as usize).collect();
            assert_eq!(coeff("(a + a)*", &word), ExtNat::from(2u64.pow(n)), "a^{n}");
        }
    }

    #[test]
    fn product_counts_splits() {
        // {{a* a*}}[a^n] = n + 1.
        for n in 0..5u64 {
            let word: Vec<&str> = std::iter::repeat_n("a", n as usize).collect();
            assert_eq!(coeff("a* a*", &word), ExtNat::from(n + 1));
        }
    }

    #[test]
    fn infinity_through_concatenation() {
        assert_eq!(coeff("1* a", &["a"]), ExtNat::INFINITY);
        assert_eq!(coeff("1* 0", &[]), ExtNat::from(0u64));
    }
}
