//! Dense matrices and vectors over an arbitrary semiring.
//!
//! Automata transition weights are stored as small dense matrices; the
//! decision procedure only ever handles a few hundred states, so dense
//! representation is both simplest and fastest here.

use nka_semiring::Semiring;

/// A dense `rows × cols` matrix over a semiring.
///
/// # Examples
///
/// ```
/// use nka_wfa::matrix::SMatrix;
/// use nka_semiring::ExtNat;
///
/// let id = SMatrix::<ExtNat>::identity(2);
/// let m = SMatrix::from_rows(vec![
///     vec![ExtNat::from(1u64), ExtNat::from(2u64)],
///     vec![ExtNat::from(0u64), ExtNat::from(1u64)],
/// ]);
/// assert_eq!(id.mul(&m), m);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SMatrix<S> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Semiring> SMatrix<S> {
    /// The `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SMatrix {
            rows,
            cols,
            data: vec![S::zero(); rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = SMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = S::one();
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: Vec<Vec<S>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend(row);
        }
        SMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entrywise sum.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.add(b))
            .collect();
        SMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul");
        let mut out: SMatrix<S> = SMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = &self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..other.cols {
                    let prod = a.mul(&other[(k, j)]);
                    out[(i, j)] = out[(i, j)].add(&prod);
                }
            }
        }
        out
    }

    /// Row vector × matrix.
    ///
    /// # Panics
    ///
    /// Panics if `vec.len() != self.rows()`.
    pub fn vec_mul(&self, vec: &[S]) -> Vec<S> {
        assert_eq!(vec.len(), self.rows, "dimension mismatch in vec_mul");
        let mut out = vec![S::zero(); self.cols];
        for (i, v) in vec.iter().enumerate() {
            if v.is_zero() {
                continue;
            }
            for j in 0..self.cols {
                out[j] = out[j].add(&v.mul(&self[(i, j)]));
            }
        }
        out
    }

    /// Matrix × column vector.
    ///
    /// # Panics
    ///
    /// Panics if `vec.len() != self.cols()`.
    pub fn mul_vec(&self, vec: &[S]) -> Vec<S> {
        assert_eq!(vec.len(), self.cols, "dimension mismatch in mul_vec");
        let mut out = vec![S::zero(); self.rows];
        for i in 0..self.rows {
            for (j, v) in vec.iter().enumerate() {
                out[i] = out[i].add(&self[(i, j)].mul(v));
            }
        }
        out
    }

    /// Applies `f` to every entry, producing a matrix over another semiring.
    pub fn map<T: Semiring>(&self, f: impl Fn(&S) -> T) -> SMatrix<T> {
        SMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dot<S: Semiring>(a: &[S], b: &[S]) -> S {
    assert_eq!(a.len(), b.len(), "dimension mismatch in dot");
    a.iter()
        .zip(b)
        .fold(S::zero(), |acc, (x, y)| acc.add(&x.mul(y)))
}

impl<S> std::ops::Index<(usize, usize)> for SMatrix<S> {
    type Output = S;
    fn index(&self, (i, j): (usize, usize)) -> &S {
        &self.data[i * self.cols + j]
    }
}

impl<S> std::ops::IndexMut<(usize, usize)> for SMatrix<S> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nka_semiring::{BigRational, ExtNat};

    fn m2(a: u64, b: u64, c: u64, d: u64) -> SMatrix<ExtNat> {
        SMatrix::from_rows(vec![
            vec![ExtNat::from(a), ExtNat::from(b)],
            vec![ExtNat::from(c), ExtNat::from(d)],
        ])
    }

    #[test]
    fn identity_is_neutral() {
        let m = m2(1, 2, 3, 4);
        let id = SMatrix::<ExtNat>::identity(2);
        assert_eq!(id.mul(&m), m);
        assert_eq!(m.mul(&id), m);
    }

    #[test]
    fn multiplication() {
        let a = m2(1, 2, 0, 1);
        let b = m2(3, 0, 1, 1);
        let prod = a.mul(&b);
        assert_eq!(prod, m2(5, 2, 1, 1));
    }

    #[test]
    fn vector_products_agree() {
        let m = m2(1, 2, 3, 4);
        let v = vec![ExtNat::from(1u64), ExtNat::from(1u64)];
        assert_eq!(m.vec_mul(&v), vec![ExtNat::from(4u64), ExtNat::from(6u64)]);
        assert_eq!(m.mul_vec(&v), vec![ExtNat::from(3u64), ExtNat::from(7u64)]);
    }

    #[test]
    fn infinity_propagates_but_zero_annihilates() {
        let inf = ExtNat::INFINITY;
        let m = SMatrix::from_rows(vec![
            vec![inf, ExtNat::from(0u64)],
            vec![ExtNat::from(0u64), ExtNat::from(1u64)],
        ]);
        let v = vec![ExtNat::from(0u64), ExtNat::from(5u64)];
        // ∞·0 = 0 keeps the first coordinate clean.
        assert_eq!(m.vec_mul(&v), vec![ExtNat::from(0u64), ExtNat::from(5u64)]);
    }

    #[test]
    fn map_changes_semiring() {
        let m = m2(2, 0, 1, 3);
        let q = m.map(|x| BigRational::from(x.finite().unwrap()));
        assert_eq!(q[(1, 1)], BigRational::from(3u64));
    }

    #[test]
    fn dot_product() {
        let a = vec![ExtNat::from(2u64), ExtNat::from(3u64)];
        let b = vec![ExtNat::from(4u64), ExtNat::from(5u64)];
        assert_eq!(dot(&a, &b), ExtNat::from(23u64));
    }
}
