//! ε-free weighted automata.

use crate::matrix::{dot, SMatrix};
use crate::nfa::Nfa;
use nka_semiring::{BigRational, ExtNat, Semiring};
use nka_syntax::{Symbol, Word};
use std::collections::BTreeMap;

/// An ε-free weighted finite automaton over a semiring `S`: an initial row
/// vector, a final column vector, and one transition matrix per symbol
/// (symbols without a matrix have the zero matrix).
///
/// The recognized series is `w ↦ ι^T · M_{w₁} ⋯ M_{wₖ} · φ`.
///
/// # Examples
///
/// ```
/// use nka_wfa::thompson;
/// use nka_syntax::{Expr, Symbol, Word};
/// use nka_semiring::ExtNat;
///
/// let e: Expr = "a a + a a".parse()?;
/// let wfa = thompson(&e).eliminate_epsilon();
/// let aa = Word::from_symbols([Symbol::intern("a"), Symbol::intern("a")]);
/// assert_eq!(wfa.coefficient(&aa), ExtNat::from(2u64));
/// # Ok::<(), nka_syntax::ParseExprError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Wfa<S> {
    state_count: usize,
    initial: Vec<S>,
    final_weights: Vec<S>,
    transitions: BTreeMap<Symbol, SMatrix<S>>,
}

impl<S: Semiring> Wfa<S> {
    /// Assembles an automaton from its parts.
    ///
    /// # Panics
    ///
    /// Panics if vector/matrix dimensions disagree with `state_count`.
    pub fn new(
        state_count: usize,
        initial: Vec<S>,
        final_weights: Vec<S>,
        transitions: BTreeMap<Symbol, SMatrix<S>>,
    ) -> Self {
        assert_eq!(initial.len(), state_count);
        assert_eq!(final_weights.len(), state_count);
        for m in transitions.values() {
            assert_eq!(m.rows(), state_count);
            assert_eq!(m.cols(), state_count);
        }
        Wfa {
            state_count,
            initial,
            final_weights,
            transitions,
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// The initial weight row vector.
    pub fn initial(&self) -> &[S] {
        &self.initial
    }

    /// The final weight column vector.
    pub fn final_weights(&self) -> &[S] {
        &self.final_weights
    }

    /// The transition matrix of `sym`, if any edge carries it.
    pub fn transition(&self, sym: Symbol) -> Option<&SMatrix<S>> {
        self.transitions.get(&sym)
    }

    /// Symbols with at least one (possibly zero-weight) transition entry.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.transitions.keys().copied()
    }

    /// The coefficient of `word` in the recognized series.
    pub fn coefficient(&self, word: &Word) -> S {
        let mut v = self.initial.clone();
        for &sym in word.symbols() {
            match self.transitions.get(&sym) {
                Some(m) => v = m.vec_mul(&v),
                None => return S::zero(),
            }
        }
        dot(&v, &self.final_weights)
    }

    /// The disjoint union with `other`, with `other`'s final weights mapped
    /// through `negate`. Over a ring (e.g. [`BigRational`]) with
    /// `negate = -1`, the result recognizes the *difference* of the two
    /// series; its zeroness is then tested by [`crate::zeroness`].
    pub fn difference(&self, other: &Wfa<S>, negate: impl Fn(&S) -> S) -> Wfa<S> {
        let n = self.state_count + other.state_count;
        let mut initial = self.initial.clone();
        initial.extend(other.initial.iter().cloned());
        let mut final_weights = self.final_weights.clone();
        final_weights.extend(other.final_weights.iter().map(&negate));
        let mut symbols: Vec<Symbol> = self.transitions.keys().copied().collect();
        for s in other.transitions.keys() {
            if !symbols.contains(s) {
                symbols.push(*s);
            }
        }
        let mut transitions = BTreeMap::new();
        for sym in symbols {
            let mut m = SMatrix::zeros(n, n);
            if let Some(a) = self.transitions.get(&sym) {
                for i in 0..self.state_count {
                    for j in 0..self.state_count {
                        m[(i, j)] = a[(i, j)].clone();
                    }
                }
            }
            if let Some(b) = other.transitions.get(&sym) {
                for i in 0..other.state_count {
                    for j in 0..other.state_count {
                        m[(self.state_count + i, self.state_count + j)] = b[(i, j)].clone();
                    }
                }
            }
            transitions.insert(sym, m);
        }
        Wfa::new(n, initial, final_weights, transitions)
    }
}

impl Wfa<ExtNat> {
    /// The regular language of words with coefficient `∞`, as an NFA.
    ///
    /// A word of length `k` has at most `state_count^k` accepting paths and
    /// every weight is non-negative, so its coefficient is `∞` **iff** some
    /// accepting path of non-zero weights crosses an `∞` weight (edge,
    /// initial, or final). The NFA tracks a "seen ∞" flag: state `2q`
    /// means "at `q`, no ∞ seen yet", `2q + 1` means "at `q`, ∞ seen".
    pub fn infinity_support(&self) -> Nfa {
        let n = self.state_count;
        let mut nfa = Nfa::new(2 * n);
        for (q, w) in self.initial.iter().enumerate() {
            if w.is_zero() {
                continue;
            }
            nfa.add_initial(2 * q + usize::from(w.is_infinite()));
        }
        for (q, w) in self.final_weights.iter().enumerate() {
            if w.is_zero() {
                continue;
            }
            // Accept from the flagged copy always; from the unflagged copy
            // only if the final weight itself is ∞.
            nfa.add_accepting(2 * q + 1);
            if w.is_infinite() {
                nfa.add_accepting(2 * q);
            }
        }
        for (&sym, m) in &self.transitions {
            for i in 0..n {
                for j in 0..n {
                    let w = m[(i, j)];
                    if w.is_zero() {
                        continue;
                    }
                    let inf = w.is_infinite();
                    // Unflagged source: flag becomes (inf).
                    nfa.add_transition(2 * i, sym, 2 * j + usize::from(inf));
                    // Flagged source stays flagged.
                    nfa.add_transition(2 * i + 1, sym, 2 * j + 1);
                }
            }
        }
        nfa
    }

    /// The finite (rational) part: all `∞` weights replaced by zero and the
    /// remaining natural-number weights embedded into Q.
    ///
    /// On any word *outside* the ∞-support this recognizes exactly the same
    /// (finite) coefficient: a path through an `∞` weight on such a word
    /// must also cross a zero weight, so it contributed nothing anyway.
    pub fn rational_part(&self) -> Wfa<BigRational> {
        let conv = |w: &ExtNat| match w.finite() {
            Some(n) => BigRational::from(n),
            None => BigRational::zero(),
        };
        let initial = self.initial.iter().map(conv).collect();
        let final_weights = self.final_weights.iter().map(conv).collect();
        let transitions = self
            .transitions
            .iter()
            .map(|(&sym, m)| (sym, m.map(conv)))
            .collect();
        Wfa::new(self.state_count, initial, final_weights, transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thompson;
    use nka_syntax::Expr;

    fn wfa_of(src: &str) -> Wfa<ExtNat> {
        let e: Expr = src.parse().unwrap();
        thompson(&e).eliminate_epsilon()
    }

    fn word(names: &[&str]) -> Word {
        Word::from_symbols(names.iter().map(|n| Symbol::intern(n)))
    }

    #[test]
    fn infinity_support_of_star_one() {
        let wfa = wfa_of("1* a");
        let nfa = wfa.infinity_support();
        let alphabet = [Symbol::intern("a")];
        let dfa = nfa.determinize(&alphabet, 10_000).unwrap();
        assert!(dfa.accepts(word(&["a"]).symbols()));
        assert!(!dfa.accepts(word(&[]).symbols()));
        assert!(!dfa.accepts(word(&["a", "a"]).symbols()));
    }

    #[test]
    fn infinity_support_empty_for_finite_series() {
        let wfa = wfa_of("(a b)* a");
        let nfa = wfa.infinity_support();
        let alphabet = [Symbol::intern("a"), Symbol::intern("b")];
        let dfa = nfa.determinize(&alphabet, 10_000).unwrap();
        assert!(dfa.is_empty_language());
    }

    #[test]
    fn rational_part_matches_on_finite_words() {
        let wfa = wfa_of("a a + a a + b");
        let q = wfa.rational_part();
        assert_eq!(q.coefficient(&word(&["a", "a"])), BigRational::from(2u64));
        assert_eq!(q.coefficient(&word(&["b"])), BigRational::from(1u64));
        assert_eq!(q.coefficient(&word(&["a"])), BigRational::zero());
    }

    #[test]
    fn difference_automaton_recognizes_difference() {
        let a = wfa_of("a + a").rational_part();
        let b = wfa_of("a").rational_part();
        let diff = a.difference(&b, |w| -w.clone());
        assert_eq!(diff.coefficient(&word(&["a"])), BigRational::from(1u64));
        let zero_diff = a.difference(&a, |w| -w.clone());
        assert_eq!(zero_diff.coefficient(&word(&["a"])), BigRational::zero());
    }
}
