//! The star-free fast path: finite word-multiset semantics for
//! loop-free equivalence queries.
//!
//! A star-free expression denotes a power series with **finite support
//! and finite coefficients** — by induction on Definition 2.2: `0`, `1`,
//! and atoms are finite maps, and `+`/`·` of finite maps are finite maps
//! (the Cauchy product of finitely supported series is finitely
//! supported, and `N` is closed under finite sums and products; only
//! `(-)*` can introduce infinite support or the coefficient `∞`). By
//! Theorem A.6 `⊢NKA e = f` iff the series coincide, so for star-free
//! `e`, `f` the whole decision reduces to comparing two finite
//! `Word → N` maps — no Thompson construction, no ε-elimination, no
//! subset construction, no rational zeroness. The `nka-qprog` encoder
//! emits a star under `Program::While` only, so every loop-free surface
//! program lands on this path.
//!
//! Two tiers, both exact:
//!
//! * **Tier 2 — prefix normalization** ([`prefix_normalize`]): flatten
//!   both sides' `·`-spines into factor lists, strip the common prefix
//!   factor-by-factor (by interned id), and bail at the first divergent
//!   *atom* head. Refuted long pairs cost O(divergence point); equal
//!   sequential compositions cost one id-comparison per gate.
//! * **Tier 1 — multiset evaluation** ([`eval_product`]): expand the
//!   residual factors into their `Word → u64` multiplicity maps
//!   (DAG-memoized over [`ExprId`]) and compare maps. A size budget and
//!   checked arithmetic make the evaluator total: exceeding either
//!   reports `None` and the caller falls back to the generic pipeline.
//!
//! # Why stripping a common prefix is sound
//!
//! For series with all coefficients finite (the star-free case), a
//! common nonzero left factor cancels: if `u ≠ 0` and `u·x = u·y` with
//! `u`, `x`, `y` finite-coefficient, then `x = y`. Suppose not, and let
//! `w` be the length-lex-least word with `x[w] ≠ y[w]`, and `x₀` the
//! length-lex-least word of `supp(u)`. Every split `s·t = x₀·w` with
//! `u[s] ≠ 0` other than `s = x₀` has `|s| > |x₀|` (a same-length prefix
//! of the same word *is* `x₀`), hence `|t| < |w|` and `x[t] = y[t]` by
//! minimality of `w`. So `(u·x)[x₀w]` and `(u·y)[x₀w]` are finite sums
//! agreeing term-by-term except for `u[x₀]·x[w]` vs `u[x₀]·y[w]`, which
//! differ because `0 < u[x₀] < ∞` — contradiction. (Over `N̄` the
//! argument needs the finiteness: a single `∞` term would equate both
//! sums. `1*·a = 1*·(a + a)` is exactly such a non-cancellable instance,
//! which is why the tiers guard on star-freeness.)
//!
//! If a common factor is the **zero** series both products are `0` and
//! the sides are equal, which is why [`prefix_normalize`] decides
//! zero-series sides up front — afterwards every factor on both sides is
//! a nonzero series, and since positivity rules out zero divisors
//! (`(u·v)[x₀y₀] ≥ u[x₀]·v[y₀] > 0`), so is every residual product.
//! Divergent atom heads `a ≠ b` therefore refute outright: the residual
//! supports are nonempty subsets of `aΣ*` vs `bΣ*`.

use nka_syntax::{Expr, ExprId, ExprNode, Word};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The finite `Word → multiplicity` map of a star-free expression —
/// Definition A.4 restricted to the star-free fragment, with
/// coefficients in `u64 ⊂ N` (overflow falls back to the generic
/// pipeline). `BTreeMap` so equality and iteration order are canonical.
pub type WordMultiset = BTreeMap<Word, u64>;

/// Factor-list length cap for [`prefix_normalize`]: a `·`-spine is a
/// *tree* reading, so a heavily shared DAG (`x·x` squared 20 times) can
/// flatten exponentially even though the DAG-memoized tier-1 evaluator
/// handles it linearly. Past the cap, tier 2 hands the unflattened
/// expressions straight to tier 1.
const MAX_FACTORS: usize = 4096;

/// Whether `e` denotes the zero series, decided structurally (total on
/// all expressions, memoized over the interned DAG): `0` is zero, sums
/// need both sides zero, products either side, and `1`, atoms, and
/// stars never are (a star's ε-coefficient is ≥ 1).
#[must_use]
pub fn is_zero_series(e: &Expr) -> bool {
    fn go(e: Expr, memo: &mut HashMap<ExprId, bool>) -> bool {
        if let Some(&z) = memo.get(&e.id()) {
            return z;
        }
        let z = match e.node() {
            ExprNode::Zero => true,
            ExprNode::One | ExprNode::Atom(_) | ExprNode::Star(_) => false,
            ExprNode::Add(l, r) => go(l, memo) && go(r, memo),
            ExprNode::Mul(l, r) => go(l, memo) || go(r, memo),
        };
        memo.insert(e.id(), z);
        z
    }
    go(*e, &mut HashMap::new())
}

/// The outcome of tier-2 prefix normalization on a star-free pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixOutcome {
    /// The tier decided the query outright (see [`prefix_normalize`]).
    Decided(bool),
    /// Equality of the original pair is equivalent to equality of these
    /// residual factor products (empty list = the one series `{ε ↦ 1}`);
    /// tier 1 takes over.
    Residual(Vec<Expr>, Vec<Expr>),
}

/// Appends the `·`-spine factors of `e` to `out`, dropping unit (`1`)
/// factors. Returns `false` (leaving `out` truncated at [`MAX_FACTORS`])
/// if the spine's tree reading is too large to flatten.
fn flatten_factors(e: Expr, out: &mut Vec<Expr>) -> bool {
    match e.node() {
        ExprNode::One => true,
        ExprNode::Mul(l, r) => flatten_factors(l, out) && flatten_factors(r, out),
        _ => {
            if out.len() >= MAX_FACTORS {
                return false;
            }
            out.push(e);
            true
        }
    }
}

/// Tier 2: incremental equivalence for sequential compositions.
///
/// Decides the pair outright when either side is the zero series (equal
/// iff both are), when the factor lists cancel completely (equal), or
/// when the first divergent factors are *distinct atoms* — or one side
/// runs out while the other's head is an atom (refuted: the residual
/// products are nonzero with disjoint supports; see the module docs for
/// why stripping the common prefix is sound). Anything else — compound
/// divergent heads like `h·(x + y)` vs `h·(y + x)` — returns the
/// residual factor lists for tier-1 multiset comparison.
///
/// The caller must ensure both sides are star-free.
#[must_use]
pub fn prefix_normalize(e: &Expr, f: &Expr) -> PrefixOutcome {
    let (ze, zf) = (is_zero_series(e), is_zero_series(f));
    if ze || zf {
        return PrefixOutcome::Decided(ze == zf);
    }
    let (mut fe, mut ff) = (Vec::new(), Vec::new());
    if !(flatten_factors(*e, &mut fe) && flatten_factors(*f, &mut ff)) {
        // Spine too large to flatten: skip cancellation, let the
        // DAG-memoized evaluator (or the generic pipeline) take the
        // originals whole.
        return PrefixOutcome::Residual(vec![*e], vec![*f]);
    }
    let common = fe
        .iter()
        .zip(&ff)
        .take_while(|(a, b)| a.id() == b.id())
        .count();
    let (re, rf) = (&fe[common..], &ff[common..]);
    let atom_head = |side: &[Expr]| {
        side.first()
            .is_some_and(|h| matches!(h.node(), ExprNode::Atom(_)))
    };
    match (re.first(), rf.first()) {
        // Full cancellation: both residuals are the one series.
        (None, None) => PrefixOutcome::Decided(true),
        // {ε ↦ 1} against a nonzero product all of whose words start
        // with the head atom: disjoint nonempty supports.
        (Some(_), None) if atom_head(re) => PrefixOutcome::Decided(false),
        (None, Some(_)) if atom_head(rf) => PrefixOutcome::Decided(false),
        // Divergent atom heads a ≠ b (distinct ids ⇒ distinct symbols):
        // nonzero products with supports inside aΣ* vs bΣ*.
        (Some(_), Some(_)) if atom_head(re) && atom_head(rf) => PrefixOutcome::Decided(false),
        _ => PrefixOutcome::Residual(re.to_vec(), rf.to_vec()),
    }
}

/// `{ε ↦ 1}` — the multiset of the empty product.
fn one_multiset() -> WordMultiset {
    let mut m = WordMultiset::new();
    m.insert(Word::epsilon(), 1);
    m
}

/// Pointwise sum `a + b`, `None` on coefficient overflow or a result
/// exceeding `max_words` entries.
fn union(a: &WordMultiset, b: &WordMultiset, max_words: usize) -> Option<WordMultiset> {
    let mut out = a.clone();
    for (w, &c) in b {
        let entry = out.entry(w.clone()).or_insert(0);
        *entry = entry.checked_add(c)?;
    }
    (out.len() <= max_words).then_some(out)
}

/// Cauchy product `a · b`: every concatenation with multiplied
/// multiplicities, summed over coinciding concatenations (this summation
/// is where non-idempotence lives — `(a + a)·b` yields `a·b ↦ 2`).
/// `None` on overflow or a result exceeding `max_words` entries.
fn cauchy(a: &WordMultiset, b: &WordMultiset, max_words: usize) -> Option<WordMultiset> {
    let mut out = WordMultiset::new();
    for (u, &cu) in a {
        for (v, &cv) in b {
            let c = cu.checked_mul(cv)?;
            let entry = out.entry(u.concat(v)).or_insert(0);
            *entry = entry.checked_add(c)?;
        }
        if out.len() > max_words {
            return None;
        }
    }
    Some(out)
}

/// The word multiset of star-free `e`, memoized in `memo` per interned
/// id (so shared subterms — and repeated queries through a long-lived
/// engine — evaluate once). `None` if any intermediate exceeds
/// `max_words` entries, any coefficient overflows `u64`, or a star is
/// encountered; partial memo entries remain valid either way.
/// `scratch_inserts` counts memo insertions under scratch ids, so an
/// engine owning `memo` can keep its epoch-eviction accounting exact.
pub fn eval_multiset(
    e: &Expr,
    memo: &mut HashMap<ExprId, Arc<WordMultiset>>,
    max_words: usize,
    scratch_inserts: &mut usize,
) -> Option<Arc<WordMultiset>> {
    if let Some(hit) = memo.get(&e.id()) {
        return Some(Arc::clone(hit));
    }
    let m = match e.node() {
        ExprNode::Zero => WordMultiset::new(),
        ExprNode::One => one_multiset(),
        ExprNode::Atom(s) => {
            let mut m = WordMultiset::new();
            m.insert(Word::from_symbols([s]), 1);
            m
        }
        ExprNode::Add(l, r) => {
            let (l, r) = (
                eval_multiset(&l, memo, max_words, scratch_inserts)?,
                eval_multiset(&r, memo, max_words, scratch_inserts)?,
            );
            union(&l, &r, max_words)?
        }
        ExprNode::Mul(l, r) => {
            let (l, r) = (
                eval_multiset(&l, memo, max_words, scratch_inserts)?,
                eval_multiset(&r, memo, max_words, scratch_inserts)?,
            );
            cauchy(&l, &r, max_words)?
        }
        // Not star-free; the caller guards on star height, but stay
        // total rather than panic.
        ExprNode::Star(_) => return None,
    };
    let m = Arc::new(m);
    if e.id().is_scratch() {
        *scratch_inserts += 1;
    }
    memo.insert(e.id(), Arc::clone(&m));
    Some(m)
}

/// The word multiset of a factor-list product (tier 1 on a tier-2
/// residual); the empty list is the one series. Each factor is memoized
/// via [`eval_multiset`]; the running product is not (partial products
/// have no interned identity). Same `None`-on-budget contract.
pub fn eval_product(
    factors: &[Expr],
    memo: &mut HashMap<ExprId, Arc<WordMultiset>>,
    max_words: usize,
    scratch_inserts: &mut usize,
) -> Option<WordMultiset> {
    let mut acc = one_multiset();
    for factor in factors {
        let m = eval_multiset(factor, memo, max_words, scratch_inserts)?;
        acc = cauchy(&acc, &m, max_words)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nka_semiring::ExtNat;
    use nka_series::eval as series_eval;
    use nka_syntax::Symbol;

    fn e(src: &str) -> Expr {
        src.parse().unwrap()
    }

    fn multiset_of(src: &str) -> WordMultiset {
        let expr = e(src);
        eval_multiset(&expr, &mut HashMap::new(), 1 << 20, &mut 0)
            .unwrap_or_else(|| panic!("{src} should evaluate"))
            .as_ref()
            .clone()
    }

    #[test]
    fn constants_atoms_and_multiplicities() {
        assert!(multiset_of("0").is_empty());
        assert_eq!(multiset_of("1"), one_multiset());
        let a = multiset_of("a");
        assert_eq!(a.get(&Word::from_symbols([Symbol::intern("a")])), Some(&1));
        // Non-idempotence: a + a has multiplicity 2, (a + a)(b + b) has 4.
        let aa = multiset_of("a + a");
        assert_eq!(aa.values().copied().collect::<Vec<_>>(), vec![2]);
        let prod = multiset_of("(a + a) (b + b)");
        assert_eq!(prod.values().copied().collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn agrees_with_truncated_series_semantics() {
        // The multiset evaluator must match Definition A.4 (the
        // reference evaluator in `nka-series`) exactly on star-free
        // terms — their support is finite, so a truncation beyond the
        // longest word is the whole series.
        let alphabet = vec![Symbol::intern("a"), Symbol::intern("b")];
        for src in [
            "0",
            "1",
            "a",
            "a b",
            "a + a",
            "(a + b) (a + b)",
            "(a + 1) (b + a b) + a (1 + b)",
            "(a + a) (b + b) (a + 1)",
            "a b a b a b",
        ] {
            let m = multiset_of(src);
            let truncation = m.keys().map(Word::len).max().unwrap_or(0) + 1;
            let series = series_eval(&e(src), &alphabet, truncation);
            for (w, &c) in &m {
                assert_eq!(
                    series.coeff(w),
                    ExtNat::from(c),
                    "{src}: coefficient of {w}"
                );
            }
            // And nothing beyond the multiset's support.
            let total: u64 = m.values().sum();
            let series_total: ExtNat = series
                .iter()
                .map(|(_, c)| c)
                .fold(ExtNat::zero_const(), |acc, c| acc + c);
            assert_eq!(series_total, ExtNat::from(total), "{src}: support mismatch");
        }
    }

    #[test]
    fn zero_series_detection() {
        assert!(is_zero_series(&e("0")));
        assert!(is_zero_series(&e("0 a + b 0")));
        assert!(is_zero_series(&e("(0 + 0 a) b")));
        assert!(!is_zero_series(&e("1")));
        assert!(!is_zero_series(&e("a 0 + b")));
        assert!(!is_zero_series(&e("0*")));
    }

    #[test]
    fn prefix_normalization_decides_and_strips() {
        // Zero sides decide outright.
        assert_eq!(
            prefix_normalize(&e("0 a"), &e("b 0")),
            PrefixOutcome::Decided(true)
        );
        assert_eq!(
            prefix_normalize(&e("0 a"), &e("b")),
            PrefixOutcome::Decided(false)
        );
        // Full cancellation (units dropped): equal.
        assert_eq!(
            prefix_normalize(&e("1 a b"), &e("a 1 b")),
            PrefixOutcome::Decided(true)
        );
        // First divergent atoms refute, at any depth.
        assert_eq!(
            prefix_normalize(&e("a b c d"), &e("a b x d")),
            PrefixOutcome::Decided(false)
        );
        // Prefix-of-the-other refutes when the longer side's head is an
        // atom.
        assert_eq!(
            prefix_normalize(&e("a b"), &e("a b c")),
            PrefixOutcome::Decided(false)
        );
        // Compound divergent heads hand residuals to tier 1.
        let PrefixOutcome::Residual(re, rf) = prefix_normalize(&e("a (b + c)"), &e("a (c + b)"))
        else {
            panic!("expected residuals");
        };
        assert_eq!(re, vec![e("b + c")]);
        assert_eq!(rf, vec![e("c + b")]);
    }

    #[test]
    fn eval_product_matches_whole_expression() {
        let factors = [e("a"), e("b + c"), e("a + a")];
        let whole = multiset_of("a (b + c) (a + a)");
        assert_eq!(
            eval_product(&factors, &mut HashMap::new(), 1 << 20, &mut 0).unwrap(),
            whole
        );
        assert_eq!(
            eval_product(&[], &mut HashMap::new(), 16, &mut 0).unwrap(),
            one_multiset()
        );
    }

    #[test]
    fn budget_and_overflow_report_none_not_panic() {
        // (a + b)^4 has 16 words; a 10-word budget must refuse.
        let expr = e("(a + b) (a + b) (a + b) (a + b)");
        assert!(eval_multiset(&expr, &mut HashMap::new(), 10, &mut 0).is_none());
        assert!(eval_multiset(&expr, &mut HashMap::new(), 16, &mut 0).is_some());
        // Coefficient overflow: (1 + 1)^64 overflows u64 on the ε
        // coefficient; must be a clean fallback, not an ExtNat panic.
        let mut doubling = e("1 + 1");
        for _ in 0..6 {
            doubling = doubling.mul(&doubling);
        }
        assert!(eval_multiset(&doubling, &mut HashMap::new(), 1 << 20, &mut 0).is_none());
    }

    #[test]
    fn shared_dag_spines_stay_linear() {
        // x·x squared 20 times: tree reading ~2M factors, DAG footprint
        // 21 nodes. Flattening must refuse (cap) and evaluation must
        // stay linear via memoization — the word x^(2^20) exceeds no
        // budget because each memoized level holds exactly one word.
        let mut sq = e("x");
        for _ in 0..20 {
            sq = sq.mul(&sq);
        }
        let other = sq.mul(&e("x"));
        match prefix_normalize(&sq, &other) {
            PrefixOutcome::Residual(re, rf) => {
                assert_eq!(re, vec![sq]);
                assert_eq!(rf, vec![other]);
            }
            PrefixOutcome::Decided(_) => panic!("capped flatten must not decide"),
        }
        let m = eval_multiset(&sq, &mut HashMap::new(), 16, &mut 0).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.keys().next().unwrap().len(), 1 << 20);
    }

    #[test]
    fn scratch_inserts_are_counted() {
        let persistent = e("scount_a scount_b");
        let mut memo = HashMap::new();
        let mut scratch_inserts = 0;
        let _scope = nka_syntax::ScratchScope::enter();
        let scratch = persistent.mul(&e("scount_a"));
        assert!(scratch.id().is_scratch());
        assert!(eval_multiset(&scratch, &mut memo, 1 << 10, &mut scratch_inserts).is_some());
        // Exactly the scratch-keyed memo entries are counted.
        let scratch_keyed = memo.keys().filter(|id| id.is_scratch()).count();
        assert_eq!(scratch_inserts, scratch_keyed);
        assert!(scratch_inserts >= 1);
    }
}
