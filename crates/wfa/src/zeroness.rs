//! Zeroness of Q-weighted automata (Tzeng / Schützenberger forward basis).
//!
//! A Q-weighted automaton recognizes the zero series iff the final vector is
//! orthogonal to the *reachable row space* `span{ ι^T·M_w : w ∈ Σ* }`. The
//! forward-basis algorithm computes that span in at most `n` extensions
//! (its dimension is bounded by the state count), so zeroness is decided in
//! polynomial time — with **exact rational arithmetic**, since the pivots
//! produced by Gaussian elimination on exponentially large path weights
//! overflow any fixed-precision representation. (`zeroness_f64` exists
//! solely as the unsound-ablation arm of the `decide_scaling` benchmark.)

use crate::automaton::Wfa;
use crate::matrix::dot;
use crate::nfa::Dfa;
use nka_semiring::BigRational;
use nka_syntax::Symbol;
use std::collections::BTreeMap;

/// Reduces `v` against the row-echelon `basis` in place; returns the pivot
/// column if a non-zero residual remains.
fn reduce(v: &mut [BigRational], basis: &[(usize, Vec<BigRational>)]) -> Option<usize> {
    for (pivot, row) in basis {
        if !v[*pivot].is_zero() {
            let factor = v[*pivot].clone();
            for (x, r) in v.iter_mut().zip(row) {
                *x = &*x - &(&factor * r);
            }
        }
    }
    v.iter().position(|x| !x.is_zero())
}

fn normalize(v: &mut [BigRational], pivot: usize) {
    let inv = v[pivot].recip();
    for x in v.iter_mut() {
        *x = &*x * &inv;
    }
}

/// Decides whether `wfa` recognizes the identically-zero series.
///
/// # Examples
///
/// ```
/// use nka_wfa::{thompson, zeroness::is_zero_series};
/// use nka_syntax::Expr;
///
/// let e: Expr = "a b".parse()?;
/// let f: Expr = "a b".parse()?;
/// let (we, wf) = (
///     thompson(&e).eliminate_epsilon().rational_part(),
///     thompson(&f).eliminate_epsilon().rational_part(),
/// );
/// let diff = we.difference(&wf, |w| -w.clone());
/// assert!(is_zero_series(&diff));
/// # Ok::<(), nka_syntax::ParseExprError>(())
/// ```
pub fn is_zero_series(wfa: &Wfa<BigRational>) -> bool {
    let n = wfa.state_count();
    let symbols: Vec<Symbol> = wfa.symbols().collect();
    let mut basis: Vec<(usize, Vec<BigRational>)> = Vec::new();
    let mut worklist: Vec<Vec<BigRational>> = vec![wfa.initial().to_vec()];

    while let Some(mut v) = worklist.pop() {
        let Some(pivot) = reduce(&mut v, &basis) else {
            continue;
        };
        if !dot(&v, wfa.final_weights()).is_zero() {
            return false;
        }
        normalize(&mut v, pivot);
        for &sym in &symbols {
            let m = wfa.transition(sym).expect("listed symbol has a matrix");
            worklist.push(m.vec_mul(&v));
        }
        basis.push((pivot, v));
        debug_assert!(basis.len() <= n, "basis larger than state count");
    }
    true
}

/// `f64` variant of [`is_zero_series`] with a tolerance — **unsound**, kept
/// only as a benchmark ablation demonstrating why exact arithmetic is
/// required (see `DESIGN.md` §6 and the `decide_scaling` bench).
pub fn is_zero_series_f64(wfa: &Wfa<BigRational>, tol: f64) -> bool {
    let n = wfa.state_count();
    let symbols: Vec<Symbol> = wfa.symbols().collect();
    let initial: Vec<f64> = wfa.initial().iter().map(BigRational::to_f64).collect();
    let finals: Vec<f64> = wfa
        .final_weights()
        .iter()
        .map(BigRational::to_f64)
        .collect();
    let mats: Vec<Vec<Vec<f64>>> = symbols
        .iter()
        .map(|&s| {
            let m = wfa.transition(s).expect("listed symbol has a matrix");
            (0..n)
                .map(|i| (0..n).map(|j| m[(i, j)].to_f64()).collect())
                .collect()
        })
        .collect();

    let mut basis: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut worklist = vec![initial];
    while let Some(mut v) = worklist.pop() {
        for (pivot, row) in &basis {
            let factor = v[*pivot];
            if factor.abs() > 0.0 {
                for (x, r) in v.iter_mut().zip(row) {
                    *x -= factor * r;
                }
            }
        }
        let Some(pivot) = v.iter().position(|x| x.abs() > tol) else {
            continue;
        };
        let acc: f64 = v.iter().zip(&finals).map(|(a, b)| a * b).sum();
        if acc.abs() > tol {
            return false;
        }
        let inv = 1.0 / v[pivot];
        for x in v.iter_mut() {
            *x *= inv;
        }
        for m in &mats {
            let mut next = vec![0.0; n];
            for (i, &vi) in v.iter().enumerate() {
                if vi != 0.0 {
                    for j in 0..n {
                        next[j] += vi * m[i][j];
                    }
                }
            }
            worklist.push(next);
        }
        basis.push((pivot, v));
        if basis.len() > n {
            break;
        }
    }
    true
}

/// Restricts `wfa` to the language of `dfa`: the product automaton
/// recognizes `w ↦ wfa(w)·[w ∈ L(dfa)]`.
///
/// Used to test zeroness of the difference series only *outside* the
/// ∞-support (pass the complement DFA of the support).
pub fn restrict_to_language(wfa: &Wfa<BigRational>, dfa: &Dfa) -> Wfa<BigRational> {
    let n = wfa.state_count();
    let d = dfa.state_count();
    let idx = |q: usize, s: usize| q * d + s;
    let mut initial = vec![BigRational::zero(); n * d];
    for (q, w) in wfa.initial().iter().enumerate() {
        initial[idx(q, 0)] = w.clone();
    }
    let mut final_weights = vec![BigRational::zero(); n * d];
    for (q, w) in wfa.final_weights().iter().enumerate() {
        for s in 0..d {
            if dfa.is_accepting(s) {
                final_weights[idx(q, s)] = w.clone();
            }
        }
    }
    let mut transitions = BTreeMap::new();
    for sym in wfa.symbols() {
        let Some(ai) = dfa.alphabet().iter().position(|&s| s == sym) else {
            // The DFA's alphabet lacks this symbol: words using it are not
            // in L(dfa), so the product simply has no such transitions.
            continue;
        };
        let m = wfa.transition(sym).expect("listed symbol has a matrix");
        let mut prod = crate::matrix::SMatrix::zeros(n * d, n * d);
        for s in 0..d {
            let s2 = dfa.step(s, ai);
            for i in 0..n {
                for j in 0..n {
                    let w = m[(i, j)].clone();
                    if !w.is_zero() {
                        prod[(idx(i, s), idx(j, s2))] = w;
                    }
                }
            }
        }
        transitions.insert(sym, prod);
    }
    Wfa::new(n * d, initial, final_weights, transitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thompson;
    use nka_syntax::{Expr, Word};

    fn rational_wfa(src: &str) -> Wfa<BigRational> {
        let e: Expr = src.parse().unwrap();
        thompson(&e).eliminate_epsilon().rational_part()
    }

    #[test]
    fn equal_series_difference_is_zero() {
        let cases = [
            ("(a b)* a", "a (b a)*"),
            ("(a + b)*", "(a* b)* a*"),
            ("1 + a a*", "a*"),
            ("(a a)* (1 + a)", "a*"),
        ];
        for (l, r) in cases {
            let diff = rational_wfa(l).difference(&rational_wfa(r), |w| -w.clone());
            assert!(is_zero_series(&diff), "{l} vs {r}");
        }
    }

    #[test]
    fn unequal_series_detected() {
        let cases = [
            ("a + a", "a"),
            ("a*", "1 + a"),
            ("a b", "b a"),
            ("(a + b)*", "a* b*"),
        ];
        for (l, r) in cases {
            let diff = rational_wfa(l).difference(&rational_wfa(r), |w| -w.clone());
            assert!(!is_zero_series(&diff), "{l} vs {r}");
        }
    }

    #[test]
    fn restriction_kills_coefficients_outside_language() {
        let wfa = rational_wfa("a* b");
        // DFA for the single word "b" over {a, b}.
        let mut nfa = crate::nfa::Nfa::new(2);
        nfa.add_initial(0);
        nfa.add_accepting(1);
        nfa.add_transition(0, Symbol::intern("b"), 1);
        let alphabet = [Symbol::intern("a"), Symbol::intern("b")];
        let dfa = nfa.determinize(&alphabet, 100).unwrap();
        let restricted = restrict_to_language(&wfa, &dfa);
        let b_word = Word::from_symbols([Symbol::intern("b")]);
        let ab_word = Word::from_symbols([Symbol::intern("a"), Symbol::intern("b")]);
        assert_eq!(restricted.coefficient(&b_word), BigRational::from(1u64));
        assert_eq!(restricted.coefficient(&ab_word), BigRational::zero());
    }

    #[test]
    fn f64_ablation_agrees_on_easy_cases() {
        let l = rational_wfa("(a b)* a");
        let r = rational_wfa("a (b a)*");
        let diff = l.difference(&r, |w| -w.clone());
        assert!(is_zero_series_f64(&diff, 1e-9));
    }
}
