//! Boolean automata: NFAs, subset construction, DFA algebra.
//!
//! These handle the ∞-support languages of the decision procedure
//! (step 3 of the pipeline described in the crate docs).

use nka_syntax::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

/// Error raised when subset construction exceeds its state budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterminizeOverflow {
    /// The budget that was exceeded.
    pub max_states: usize,
}

impl fmt::Display for DeterminizeOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "subset construction exceeded {} states", self.max_states)
    }
}

impl std::error::Error for DeterminizeOverflow {}

/// A nondeterministic finite automaton (no ε-transitions).
#[derive(Debug, Clone, Default)]
pub struct Nfa {
    state_count: usize,
    initial: BTreeSet<usize>,
    accepting: BTreeSet<usize>,
    transitions: BTreeMap<(usize, Symbol), BTreeSet<usize>>,
}

impl Nfa {
    /// An NFA with `state_count` states and no edges.
    pub fn new(state_count: usize) -> Nfa {
        Nfa {
            state_count,
            ..Nfa::default()
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Marks `state` initial.
    pub fn add_initial(&mut self, state: usize) {
        debug_assert!(state < self.state_count);
        self.initial.insert(state);
    }

    /// Marks `state` accepting.
    pub fn add_accepting(&mut self, state: usize) {
        debug_assert!(state < self.state_count);
        self.accepting.insert(state);
    }

    /// Adds the transition `from --sym--> to`.
    pub fn add_transition(&mut self, from: usize, sym: Symbol, to: usize) {
        debug_assert!(from < self.state_count && to < self.state_count);
        self.transitions.entry((from, sym)).or_default().insert(to);
    }

    /// Subset construction over the given alphabet.
    ///
    /// # Errors
    ///
    /// Returns [`DeterminizeOverflow`] if more than `max_states` subsets are
    /// created (a safety valve — ∞-support automata are tiny in practice,
    /// but subset construction is exponential in the worst case).
    pub fn determinize(
        &self,
        alphabet: &[Symbol],
        max_states: usize,
    ) -> Result<Dfa, DeterminizeOverflow> {
        // The initial subset counts against the budget too: a zero budget
        // must fail on every input rather than "succeed" with a vacuous
        // one-state DFA (which would let pathological options masquerade
        // as real verdicts).
        if max_states == 0 {
            return Err(DeterminizeOverflow { max_states });
        }
        let mut subsets: HashMap<Vec<usize>, usize> = HashMap::new();
        let mut worklist = VecDeque::new();
        let start: Vec<usize> = self.initial.iter().copied().collect();
        subsets.insert(start.clone(), 0);
        worklist.push_back(start);
        let mut dfa = Dfa {
            alphabet: alphabet.to_vec(),
            transitions: Vec::new(),
            accepting: Vec::new(),
        };
        dfa.transitions.push(vec![0; alphabet.len()]);
        dfa.accepting.push(false);

        while let Some(subset) = worklist.pop_front() {
            let id = subsets[&subset];
            dfa.accepting[id] = subset.iter().any(|q| self.accepting.contains(q));
            for (ai, &sym) in alphabet.iter().enumerate() {
                let mut next = BTreeSet::new();
                for &q in &subset {
                    if let Some(dsts) = self.transitions.get(&(q, sym)) {
                        next.extend(dsts.iter().copied());
                    }
                }
                let key: Vec<usize> = next.into_iter().collect();
                let next_id = match subsets.get(&key) {
                    Some(&i) => i,
                    None => {
                        let i = dfa.transitions.len();
                        if i >= max_states {
                            return Err(DeterminizeOverflow { max_states });
                        }
                        subsets.insert(key.clone(), i);
                        dfa.transitions.push(vec![0; alphabet.len()]);
                        dfa.accepting.push(false);
                        worklist.push_back(key);
                        i
                    }
                };
                dfa.transitions[id][ai] = next_id;
            }
        }
        Ok(dfa)
    }
}

/// A complete deterministic finite automaton; state 0 is initial.
#[derive(Debug, Clone)]
pub struct Dfa {
    alphabet: Vec<Symbol>,
    /// `transitions[state][symbol_index]`.
    transitions: Vec<Vec<usize>>,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// The alphabet (shared index space with transitions).
    pub fn alphabet(&self) -> &[Symbol] {
        &self.alphabet
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting[state]
    }

    /// The successor of `state` under the symbol with alphabet index `ai`.
    pub fn step(&self, state: usize, ai: usize) -> usize {
        self.transitions[state][ai]
    }

    /// Runs the DFA on a word; symbols outside the alphabet send the run to
    /// a (virtual) dead state, i.e. the word is rejected.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut state = 0usize;
        for sym in word {
            match self.alphabet.iter().position(|s| s == sym) {
                Some(ai) => state = self.transitions[state][ai],
                None => return false,
            }
        }
        self.accepting[state]
    }

    /// Complements the acceptance condition (alphabet unchanged).
    pub fn complement(&self) -> Dfa {
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions: self.transitions.clone(),
            accepting: self.accepting.iter().map(|a| !a).collect(),
        }
    }

    /// Whether the recognized language is empty.
    pub fn is_empty_language(&self) -> bool {
        !self.reachable().iter().any(|&s| self.accepting[s])
    }

    fn reachable(&self) -> Vec<usize> {
        let mut seen = vec![false; self.state_count()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut out = Vec::new();
        while let Some(s) = stack.pop() {
            out.push(s);
            for &t in &self.transitions[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        out
    }

    /// Language equivalence via product-automaton search for a
    /// distinguishing state pair.
    ///
    /// # Panics
    ///
    /// Panics if the two DFAs were built over different alphabets (callers
    /// in this crate always determinize over the shared alphabet first).
    pub fn equivalent(&self, other: &Dfa) -> bool {
        assert_eq!(
            self.alphabet, other.alphabet,
            "DFA equivalence requires a common alphabet"
        );
        let mut seen = BTreeSet::new();
        let mut worklist = vec![(0usize, 0usize)];
        seen.insert((0usize, 0usize));
        while let Some((a, b)) = worklist.pop() {
            if self.accepting[a] != other.accepting[b] {
                return false;
            }
            for ai in 0..self.alphabet.len() {
                let next = (self.transitions[a][ai], other.transitions[b][ai]);
                if seen.insert(next) {
                    worklist.push(next);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    /// NFA for the language a·b* over {a, b}.
    fn a_then_bs() -> Nfa {
        let mut nfa = Nfa::new(2);
        nfa.add_initial(0);
        nfa.add_accepting(1);
        nfa.add_transition(0, sym("a"), 1);
        nfa.add_transition(1, sym("b"), 1);
        nfa
    }

    #[test]
    fn determinize_and_run() {
        let alphabet = [sym("a"), sym("b")];
        let dfa = a_then_bs().determinize(&alphabet, 100).unwrap();
        assert!(dfa.accepts(&[sym("a")]));
        assert!(dfa.accepts(&[sym("a"), sym("b"), sym("b")]));
        assert!(!dfa.accepts(&[]));
        assert!(!dfa.accepts(&[sym("b")]));
        assert!(!dfa.accepts(&[sym("a"), sym("a")]));
    }

    #[test]
    fn complement_flips_membership() {
        let alphabet = [sym("a"), sym("b")];
        let dfa = a_then_bs().determinize(&alphabet, 100).unwrap();
        let comp = dfa.complement();
        assert!(!comp.accepts(&[sym("a")]));
        assert!(comp.accepts(&[]));
        assert!(comp.accepts(&[sym("b")]));
    }

    #[test]
    fn equivalence_of_different_presentations() {
        let alphabet = [sym("a"), sym("b")];
        // Same language, different NFA: extra useless state.
        let mut other = Nfa::new(3);
        other.add_initial(0);
        other.add_accepting(1);
        other.add_transition(0, sym("a"), 1);
        other.add_transition(1, sym("b"), 1);
        other.add_transition(2, sym("a"), 2);
        let d1 = a_then_bs().determinize(&alphabet, 100).unwrap();
        let d2 = other.determinize(&alphabet, 100).unwrap();
        assert!(d1.equivalent(&d2));
        assert!(!d1.equivalent(&d2.complement()));
    }

    #[test]
    fn empty_language_detection() {
        let alphabet = [sym("a")];
        let mut nfa = Nfa::new(2);
        nfa.add_initial(0);
        nfa.add_accepting(1); // unreachable
        let dfa = nfa.determinize(&alphabet, 100).unwrap();
        assert!(dfa.is_empty_language());
    }

    #[test]
    fn overflow_guard_fires() {
        // An NFA whose determinization needs more than 1 state.
        let alphabet = [sym("a"), sym("b")];
        let result = a_then_bs().determinize(&alphabet, 1);
        assert!(result.is_err());
    }

    #[test]
    fn words_outside_alphabet_are_rejected() {
        let alphabet = [sym("a"), sym("b")];
        let dfa = a_then_bs().determinize(&alphabet, 100).unwrap();
        assert!(!dfa.accepts(&[sym("zzz_not_in_alphabet")]));
    }
}
