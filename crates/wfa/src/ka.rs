//! The idempotent fragment: Kleene algebra inside NKA (Remark 2.1).
//!
//! Remark 2.1 of the paper observes that the subset
//! `1*K = {1*·p : p ∈ K}` of any NKA satisfies the **Kleene algebra**
//! axioms — multiplying by `1*` saturates every non-zero coefficient to
//! `∞`, and `∞ + ∞ = ∞` restores the idempotent law that NKA drops. In
//! the rational-power-series model this is exact:
//!
//! ```text
//! {{1*·e}}[w] = ∞ · {{e}}[w]  =  ∞ if w ∈ L(e), 0 otherwise,
//! ```
//!
//! so `⊢NKA 1*e = 1*f` **iff** `L(e) = L(f)` **iff** `⊢KA e = f` (the last
//! step is Kozen's completeness theorem for KA). This module makes the
//! embedding executable:
//!
//! * [`support_nfa`] — the support `L(e) = {w : {{e}}[w] > 0}` of an
//!   ε-free WFA over `N̄`, as an NFA (weights are non-negative, so no
//!   cancellation: the support is the underlying unweighted automaton).
//! * [`ka_equiv`] — decides `⊢KA e = f` by comparing support DFAs.
//! * [`saturate`] — the syntactic embedding `e ↦ 1*·e`.
//!
//! Together with [`crate::decide::decide_eq`] this gives two *independent*
//! decision procedures whose agreement on the embedding is itself a
//! theorem (`ka_equiv(e, f) ⇔ decide_eq(1*e, 1*f)`), property-tested in
//! this module and exercised in `examples/ka_vs_nka.rs`.
//!
//! # Examples
//!
//! Idempotence separates the two theories and the embedding repairs it:
//!
//! ```
//! use nka_wfa::{decide_eq, ka::{ka_equiv, saturate}};
//! use nka_syntax::Expr;
//!
//! let pp: Expr = "p + p".parse()?;
//! let p: Expr = "p".parse()?;
//! assert!(!decide_eq(&pp, &p)?);                       // not an NKA theorem
//! assert!(ka_equiv(&pp, &p)?);                         // a KA theorem
//! assert!(decide_eq(&saturate(&pp), &saturate(&p))?);  // Remark 2.1
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::automaton::Wfa;
use crate::decide::DecideError;
use crate::nfa::{Dfa, Nfa};
use crate::thompson::thompson;
use nka_semiring::{ExtNat, Semiring};
use nka_syntax::{Expr, Symbol};

/// The support `{w : coefficient(w) > 0}` of an ε-free WFA over `N̄`.
///
/// Weights in `N̄` are non-negative and addition cannot cancel, so a word
/// has non-zero coefficient iff it has *some* accepting path all of whose
/// weights (initial, edges, final) are non-zero. That is exactly the
/// language of the unweighted automaton obtained by keeping non-zero
/// entries.
pub fn support_nfa(wfa: &Wfa<ExtNat>) -> Nfa {
    let n = wfa.state_count();
    let mut nfa = Nfa::new(n);
    for (q, w) in wfa.initial().iter().enumerate() {
        if !w.is_zero() {
            nfa.add_initial(q);
        }
    }
    for (q, w) in wfa.final_weights().iter().enumerate() {
        if !w.is_zero() {
            nfa.add_accepting(q);
        }
    }
    let symbols: Vec<Symbol> = wfa.symbols().collect();
    for sym in symbols {
        let m = wfa.transition(sym).expect("symbol listed by symbols()");
        for i in 0..n {
            for j in 0..n {
                if !m[(i, j)].is_zero() {
                    nfa.add_transition(i, sym, j);
                }
            }
        }
    }
    nfa
}

/// The support of an expression as a DFA over the given alphabet.
///
/// # Errors
///
/// Returns [`DecideError`] if the subset construction exceeds
/// `max_dfa_states`.
pub fn support_dfa(
    e: &Expr,
    alphabet: &[Symbol],
    max_dfa_states: usize,
) -> Result<Dfa, DecideError> {
    let wfa = thompson(e).eliminate_epsilon();
    Ok(support_nfa(&wfa).determinize(alphabet, max_dfa_states)?)
}

/// Decides `⊢KA e = f`, i.e. language equivalence `L(e) = L(f)` of the
/// underlying regular expressions (Kozen's completeness theorem for KA).
///
/// This is the decision procedure for the idempotent image `1*K` of
/// Remark 2.1: `⊢KA e = f` holds iff `⊢NKA 1*e = 1*f` (tested against
/// [`crate::decide::decide_eq`] in this module's tests).
///
/// # Errors
///
/// Returns [`DecideError`] if a subset construction exceeds the default
/// state budget (100 000 subsets).
///
/// # Examples
///
/// ```
/// use nka_wfa::ka::ka_equiv;
/// use nka_syntax::Expr;
///
/// // (p + q)* = (p* q*)* needs idempotence: KA-valid, NKA-invalid.
/// let lhs: Expr = "(p + q)*".parse()?;
/// let rhs: Expr = "(p* q*)*".parse()?;
/// assert!(ka_equiv(&lhs, &rhs)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn ka_equiv(e: &Expr, f: &Expr) -> Result<bool, DecideError> {
    ka_equiv_with(e, f, 100_000)
}

/// [`ka_equiv`] with an explicit subset-construction state budget.
///
/// # Errors
///
/// Returns [`DecideError`] if a subset construction exceeds
/// `max_dfa_states`.
pub fn ka_equiv_with(e: &Expr, f: &Expr, max_dfa_states: usize) -> Result<bool, DecideError> {
    crate::engine::Decider::with_budget(max_dfa_states).ka_equiv(e, f)
}

/// The syntactic embedding `e ↦ 1*·e` of Remark 2.1.
///
/// In the power-series model `{{1*}} = ∞·ε`, so `{{1*e}}` is the `∞`-
/// saturation of `{{e}}`: every non-zero coefficient becomes `∞`. The
/// image of `saturate` therefore lives in the idempotent subalgebra
/// `1*K`.
pub fn saturate(e: &Expr) -> Expr {
    Expr::one().star().mul(e)
}

/// Checks `w ∈ L(e)` directly on the support DFA.
///
/// # Errors
///
/// Returns [`DecideError`] on subset-construction overflow.
pub fn ka_accepts(e: &Expr, word: &[Symbol]) -> Result<bool, DecideError> {
    crate::engine::Decider::new().ka_accepts(e, word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::decide_eq;
    use nka_syntax::Expr;

    fn e(src: &str) -> Expr {
        src.parse().unwrap()
    }

    #[test]
    fn support_of_simple_expressions() {
        let a = Symbol::intern("a");
        let b = Symbol::intern("b");
        assert!(ka_accepts(&e("a b"), &[a, b]).unwrap());
        assert!(!ka_accepts(&e("a b"), &[b, a]).unwrap());
        assert!(ka_accepts(&e("a*"), &[]).unwrap());
        assert!(ka_accepts(&e("a*"), &[a, a, a]).unwrap());
        assert!(!ka_accepts(&e("0"), &[]).unwrap());
        assert!(ka_accepts(&e("1"), &[]).unwrap());
    }

    #[test]
    fn support_ignores_multiplicity() {
        // a + a has coefficient 2 on "a": same support as a.
        assert!(ka_equiv(&e("a + a"), &e("a")).unwrap());
        // 1* has coefficient ∞ on ε: same support as 1.
        assert!(ka_equiv(&e("1*"), &e("1")).unwrap());
        // (a + 1)(a + 1) has coefficient 2 on "a": support {ε, a, aa}.
        assert!(ka_equiv(&e("(a + 1)(a + 1)"), &e("1 + a + a a")).unwrap());
    }

    #[test]
    fn idempotence_valid_in_ka_invalid_in_nka() {
        assert!(ka_equiv(&e("p + p"), &e("p")).unwrap());
        assert!(!decide_eq(&e("p + p"), &e("p")).unwrap());
    }

    #[test]
    fn star_of_sum_valid_in_ka_invalid_in_nka() {
        // (p + q)* = (p* q*)* — the classic identity needing idempotence.
        let lhs = e("(p + q)*");
        let rhs = e("(p* q*)*");
        assert!(ka_equiv(&lhs, &rhs).unwrap());
        assert!(!decide_eq(&lhs, &rhs).unwrap());
    }

    #[test]
    fn star_star_valid_in_ka_invalid_in_nka() {
        // p** = p* holds in KA; in NKA p** multiplies coefficients.
        assert!(ka_equiv(&e("p * *"), &e("p*")).unwrap());
        assert!(!decide_eq(&e("p * *"), &e("p*")).unwrap());
    }

    #[test]
    fn remark_2_1_embedding_on_ka_theorems() {
        // On each pair: KA-valid, and valid in NKA after 1*-saturation.
        let pairs = [
            ("p + p", "p"),
            ("(p + q)*", "(p* q*)*"),
            ("p * *", "p*"),
            ("(p + q)*", "p* (q p*)*"),
            ("(p q)* p", "p (q p)*"),
            ("1 + p p*", "p*"),
        ];
        for (l, r) in pairs {
            let (l, r) = (e(l), e(r));
            assert!(ka_equiv(&l, &r).unwrap(), "KA should accept {l} = {r}");
            assert!(
                decide_eq(&saturate(&l), &saturate(&r)).unwrap(),
                "NKA should accept 1*({l}) = 1*({r})"
            );
        }
    }

    #[test]
    fn embedding_preserves_refutations() {
        // Language-inequivalent pairs stay inequivalent after saturation.
        let pairs = [("p", "q"), ("p q", "q p"), ("p*", "p"), ("1", "0")];
        for (l, r) in pairs {
            let (l, r) = (e(l), e(r));
            assert!(!ka_equiv(&l, &r).unwrap());
            assert!(!decide_eq(&saturate(&l), &saturate(&r)).unwrap());
        }
    }

    #[test]
    fn idempotent_law_holds_in_the_image() {
        // 1*p + 1*p = 1*p is an NKA theorem (∞ + ∞ = ∞).
        for src in ["p", "p q", "(p + q)*", "p* q"] {
            let sp = saturate(&e(src));
            assert!(decide_eq(&sp.add(&sp), &sp).unwrap(), "failed on {src}");
        }
    }

    #[test]
    fn saturation_is_a_closure() {
        // 1*·1*·e = 1*·e (the image is closed under the embedding).
        let p = e("p (q + 1)*");
        assert!(decide_eq(&saturate(&saturate(&p)), &saturate(&p)).unwrap());
    }

    #[test]
    fn empty_alphabet_edge_cases() {
        assert!(ka_equiv(&e("1"), &e("1 + 0")).unwrap());
        assert!(!ka_equiv(&e("1"), &e("0")).unwrap());
        assert!(ka_equiv(&e("0*"), &e("1")).unwrap());
    }

    /// Remark 2.1 as an executable theorem: the two *independent*
    /// decision procedures — the support-DFA KA check and the weighted
    /// NKA pipeline on the `1*`-saturated pair — agree on random
    /// expressions.
    #[test]
    fn ka_equiv_agrees_with_saturated_nka_on_random_expressions() {
        use nka_syntax::{random_expr, ExprGenConfig};
        let alphabet = vec![Symbol::intern("a"), Symbol::intern("b")];
        let config = ExprGenConfig::new(alphabet).with_target_size(9);
        let mut seed = 0xD1CEu64;
        let mut exprs = Vec::new();
        for _ in 0..14 {
            exprs.push(random_expr(&config, &mut seed));
        }
        let mut agreements = 0usize;
        let mut equal_pairs = 0usize;
        for x in &exprs {
            for y in &exprs {
                let ka = ka_equiv(x, y).unwrap();
                let nka = decide_eq(&saturate(x), &saturate(y)).unwrap();
                assert_eq!(ka, nka, "disagreement on {x} vs {y}");
                agreements += 1;
                if ka {
                    equal_pairs += 1;
                }
            }
        }
        // Sanity: the sample must exercise both outcomes.
        assert!(agreements > 0 && equal_pairs > exprs.len());
        assert!(equal_pairs < agreements);
    }
}
