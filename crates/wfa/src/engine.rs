//! The budgeted decision engine: one reusable surface for every NKA / KA
//! equivalence query in the workspace.
//!
//! The free functions [`crate::decide_eq`] and [`crate::ka_equiv`] are
//! one-shot conveniences; anything that decides *more than one* query — the
//! auto-prover, the `nka` CLI, the benches, batch test oracles — should hold
//! a [`Decider`] instead. The engine owns the resource policy
//! ([`DecideOptions`]) and memoizes every expensive intermediate across
//! queries:
//!
//! * compiled ε-free automata (Thompson + ε-elimination) per expression,
//!   together with their rational parts;
//! * determinized ∞-support and support DFAs per (expression, alphabet);
//! * final verdicts per unordered query pair.
//!
//! Deciding `e = f` and then `e = g` therefore compiles `e` once; deciding
//! the same pair twice is a hash lookup. All entry points return
//! `Result` — the engine never panics on budget exhaustion, it reports
//! [`DecideError`] and leaves the caches intact so a caller may retry with
//! a larger budget via a fresh engine.
//!
//! # Cache keying (Expr API v2)
//!
//! Every cache is keyed on [`ExprId`] — the hash-consed identity of an
//! expression — plus a per-engine interned alphabet id for the DFA maps,
//! so keys are small `Copy` integers and every probe is **allocation-
//! free**. (Regression note: the v1 engine keyed on whole `Expr` trees
//! and `Vec<Symbol>` alphabets, so each `infinity_dfa`/`support_dfa`
//! probe built an owned `(e.clone(), alphabet.to_vec())` key and the
//! symmetric verdict lookup cloned both expressions under *both*
//! orientations per read. With interned ids the symmetric caches key on
//! the normalized pair `(min(id₁, id₂), max(id₁, id₂))` and probe once.
//! Keep it that way — cache probes are the warm-path inner loop.)
//!
//! The engine is `Send + Sync` (statically asserted below): compiled
//! automata are held behind `Arc` and expressions are arena handles, so
//! whole engines — and the `nka_core::api::Session`s wrapping them —
//! can move across worker threads for parallel batch sharding.
//!
//! # Examples
//!
//! ```
//! use nka_wfa::engine::Decider;
//! use nka_syntax::Expr;
//!
//! let mut engine = Decider::new();
//! let lhs: Expr = "(p q)* p".parse()?;
//! let rhs: Expr = "p (q p)*".parse()?;
//! assert!(engine.decide(&lhs, &rhs)?);       // sliding — a theorem
//! assert!(engine.decide(&lhs, &rhs)?);       // answered from the cache
//! assert_eq!(engine.stats().answer_hits, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::automaton::Wfa;
use crate::decide::{DecideError, DecideOptions};
use crate::ka::support_nfa;
use crate::nfa::Dfa;
use crate::starfree::{self, PrefixOutcome, WordMultiset};
use crate::thompson::thompson;
use crate::zeroness::{is_zero_series, is_zero_series_f64, restrict_to_language};
use nka_semiring::{BigRational, ExtNat};
use nka_syntax::{Expr, ExprId, Symbol};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::{Arc, OnceLock};

/// An expression compiled down to its ε-free weighted automaton. The
/// rational (finite-part) embedding is computed lazily: KA queries and NKA
/// queries refuted at the ∞-support step never need it.
#[derive(Debug)]
struct Compiled {
    wfa: Wfa<ExtNat>,
    rational: OnceLock<Wfa<BigRational>>,
}

impl Compiled {
    fn rational(&self) -> &Wfa<BigRational> {
        self.rational.get_or_init(|| self.wfa.rational_part())
    }
}

/// A per-engine dense id for an interned (sorted) alphabet; pairs with
/// [`ExprId`] to form the `Copy` DFA-cache keys.
type AlphabetId = u32;

/// Cache-effectiveness counters, exposed for tests, logging, and the CLI's
/// `--stats` output. All counters are cumulative over the engine's life.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeciderStats {
    /// NKA queries answered (including cache hits).
    pub nka_queries: u64,
    /// KA (language-equivalence) queries answered (including cache hits).
    pub ka_queries: u64,
    /// Queries answered directly from the verdict cache.
    pub answer_hits: u64,
    /// Expression compilations served from the automaton cache.
    pub compile_hits: u64,
    /// Expressions compiled fresh (Thompson + ε-elimination).
    pub compile_misses: u64,
    /// Determinizations served from the DFA cache.
    pub dfa_hits: u64,
    /// Subset constructions actually run.
    pub dfa_misses: u64,
    /// NKA queries answered by the tier-1 star-free multiset evaluator
    /// (finite word-multiset comparison; no automaton was built).
    pub starfree_hits: u64,
    /// NKA queries answered by tier-2 prefix normalization (zero-series
    /// sides, full factor cancellation, or a divergent atom head).
    pub prefix_hits: u64,
    /// Star-free queries that exceeded the multiset budget (or
    /// overflowed `u64`) and fell back to the generic pipeline.
    pub fastpath_fallbacks: u64,
}

impl DeciderStats {
    /// The counter-wise difference `self - earlier`; counters are
    /// monotone, so with two snapshots of the same engine this is the
    /// activity attributable to the queries in between. Saturates at
    /// zero if the snapshots are swapped.
    #[must_use]
    pub fn delta_since(&self, earlier: &DeciderStats) -> DeciderStats {
        DeciderStats {
            nka_queries: self.nka_queries.saturating_sub(earlier.nka_queries),
            ka_queries: self.ka_queries.saturating_sub(earlier.ka_queries),
            answer_hits: self.answer_hits.saturating_sub(earlier.answer_hits),
            compile_hits: self.compile_hits.saturating_sub(earlier.compile_hits),
            compile_misses: self.compile_misses.saturating_sub(earlier.compile_misses),
            dfa_hits: self.dfa_hits.saturating_sub(earlier.dfa_hits),
            dfa_misses: self.dfa_misses.saturating_sub(earlier.dfa_misses),
            starfree_hits: self.starfree_hits.saturating_sub(earlier.starfree_hits),
            prefix_hits: self.prefix_hits.saturating_sub(earlier.prefix_hits),
            fastpath_fallbacks: self
                .fastpath_fallbacks
                .saturating_sub(earlier.fastpath_fallbacks),
        }
    }

    /// The counter-wise sum `self + other` (saturating) — for
    /// aggregating per-query deltas or per-worker totals, e.g. across
    /// the workers of a parallel batch.
    #[must_use]
    pub fn merged(&self, other: &DeciderStats) -> DeciderStats {
        DeciderStats {
            nka_queries: self.nka_queries.saturating_add(other.nka_queries),
            ka_queries: self.ka_queries.saturating_add(other.ka_queries),
            answer_hits: self.answer_hits.saturating_add(other.answer_hits),
            compile_hits: self.compile_hits.saturating_add(other.compile_hits),
            compile_misses: self.compile_misses.saturating_add(other.compile_misses),
            dfa_hits: self.dfa_hits.saturating_add(other.dfa_hits),
            dfa_misses: self.dfa_misses.saturating_add(other.dfa_misses),
            starfree_hits: self.starfree_hits.saturating_add(other.starfree_hits),
            prefix_hits: self.prefix_hits.saturating_add(other.prefix_hits),
            fastpath_fallbacks: self
                .fastpath_fallbacks
                .saturating_add(other.fastpath_fallbacks),
        }
    }
}

/// The memoizing, budgeted decision engine. See the [module docs](self).
///
/// # Scratch-epoch hygiene (Arena lifecycle v1)
///
/// Cache keys are [`ExprId`]s, and scratch ids (interned under a
/// `nka_syntax::ScratchScope`) are *reused* after their scope retires.
/// The engine therefore snapshots [`nka_syntax::scratch_epoch`] and, on
/// observing an advance at any public entry point, evicts every cache
/// entry whose key involves a scratch id — persistent-keyed entries
/// survive untouched, so retirement costs the warm path nothing (the
/// common case, where no scratch id ever entered the engine, is a
/// single integer compare).
#[derive(Debug, Default)]
pub struct Decider {
    opts: DecideOptions,
    exprs: HashMap<ExprId, Arc<Compiled>>,
    /// Sorted alphabets seen by this engine, interned to dense ids so
    /// DFA-cache keys are `Copy` and probes never allocate. Probed via
    /// `&[Symbol]` (the `Borrow` impl of `Box<[Symbol]>`).
    alphabets: HashMap<Box<[Symbol]>, AlphabetId>,
    /// Determinized ∞-support DFAs, keyed by (expression id, alphabet id).
    infinity_dfas: HashMap<(ExprId, AlphabetId), Arc<Dfa>>,
    /// Determinized support DFAs (the KA side), same keying.
    support_dfas: HashMap<(ExprId, AlphabetId), Arc<Dfa>>,
    /// Verdict caches, keyed on the *normalized* unordered pair
    /// `(min(id₁, id₂), max(id₁, id₂))` — one probe answers both
    /// orientations of a symmetric query.
    nka_verdicts: HashMap<(ExprId, ExprId), bool>,
    ka_verdicts: HashMap<(ExprId, ExprId), bool>,
    /// Word multisets of star-free (sub)expressions — the tier-1 memo
    /// of the star-free fast path (see [`crate::starfree`]), shared
    /// across queries like the automaton caches.
    multisets: HashMap<ExprId, Arc<WordMultiset>>,
    /// Verdict-cache keys that were restored from a snapshot rather than
    /// decided in this process, per cache. A hit on one of these is a
    /// *warm-start* hit — counted in [`Decider::snapshot_hits`] on top of
    /// the ordinary `answer_hits` bump, so tiered lookup effectiveness
    /// (in-process hit → snapshot hit → recompute) is observable.
    restored_nka_pairs: HashSet<(ExprId, ExprId)>,
    restored_ka_pairs: HashSet<(ExprId, ExprId)>,
    /// Cache entries (verdicts + multisets) restored from a snapshot.
    restored_entries: u64,
    /// Verdict-cache hits whose entry came from a snapshot.
    snapshot_hits: u64,
    /// The scratch-retirement epoch the caches are consistent with.
    seen_scratch_epoch: u64,
    /// Number of live cache entries keyed (partly) on scratch ids; when
    /// zero, an epoch advance needs no scan at all.
    scratch_keyed: usize,
    /// Scratch-keyed purges performed (observability for tests/stats).
    scratch_purges: u64,
    stats: DeciderStats,
}

/// Compile-time proof that whole engines (caches included) move and
/// share across threads — the contract the parallel batch path relies on.
#[allow(dead_code)]
fn _static_assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Decider>();
    check::<DeciderStats>();
}

impl Decider {
    /// An engine with the default options (100 000-state budget, exact
    /// arithmetic).
    #[must_use]
    pub fn new() -> Decider {
        Decider::default()
    }

    /// An engine with explicit options.
    #[must_use]
    pub fn with_options(opts: DecideOptions) -> Decider {
        Decider {
            opts,
            ..Decider::default()
        }
    }

    /// An engine with the given subset-construction state budget.
    #[must_use]
    pub fn with_budget(max_dfa_states: usize) -> Decider {
        Decider::with_options(DecideOptions {
            max_dfa_states,
            ..DecideOptions::default()
        })
    }

    /// The resource options this engine enforces.
    #[must_use]
    pub fn options(&self) -> &DecideOptions {
        &self.opts
    }

    /// Cache-effectiveness counters.
    #[must_use]
    pub fn stats(&self) -> DeciderStats {
        self.stats
    }

    /// How many times this engine evicted scratch-keyed cache entries
    /// after observing a scratch-epoch advance. Stays zero for engines
    /// that only ever see persistent expressions.
    #[must_use]
    pub fn scratch_purges(&self) -> u64 {
        self.scratch_purges
    }

    /// Brings the caches in line with the current scratch epoch: if any
    /// scope retired since the last call *and* this engine holds
    /// scratch-keyed entries, those entries are evicted (their ids may
    /// since name different terms). Called at every public entry point;
    /// O(1) unless both conditions hold.
    fn sync_scratch_epoch(&mut self) {
        // Warm-path fast exit: with no scratch-keyed entries there is
        // nothing a stale epoch could mis-serve — skip even the atomic
        // epoch load. `seen_scratch_epoch` is (re)captured whenever the
        // first scratch-keyed entry goes in (`note_scratch_key`).
        if self.scratch_keyed == 0 {
            return;
        }
        let epoch = nka_syntax::scratch_epoch();
        if epoch == self.seen_scratch_epoch {
            return;
        }
        self.seen_scratch_epoch = epoch;
        self.exprs.retain(|id, _| !id.is_scratch());
        self.infinity_dfas.retain(|(id, _), _| !id.is_scratch());
        self.support_dfas.retain(|(id, _), _| !id.is_scratch());
        self.nka_verdicts
            .retain(|(a, b), _| !a.is_scratch() && !b.is_scratch());
        self.ka_verdicts
            .retain(|(a, b), _| !a.is_scratch() && !b.is_scratch());
        self.multisets.retain(|id, _| !id.is_scratch());
        self.scratch_keyed = 0;
        self.scratch_purges += 1;
    }

    /// Records that a scratch-keyed cache entry is being inserted; the
    /// first one pins the epoch the entry is valid under.
    fn note_scratch_key(&mut self) {
        if self.scratch_keyed == 0 {
            self.seen_scratch_epoch = nka_syntax::scratch_epoch();
        }
        self.scratch_keyed += 1;
    }

    /// Decides `⊢NKA e = f` (Remark 2.1 / Theorem A.6).
    ///
    /// Queries run through a tiered pipeline behind the verdict cache:
    /// **star-free** pairs (loop-free program encodings) are answered
    /// by prefix normalization or finite word-multiset comparison (see
    /// [`crate::starfree`]) without building any automaton — and
    /// therefore without consuming DFA-state budget. Everything else —
    /// and star-free pairs whose multisets exceed
    /// [`DecideOptions::starfree_max_words`] — takes the generic
    /// automaton pipeline. Both paths are exact; the verdict never
    /// depends on the tier that produced it.
    ///
    /// # Errors
    ///
    /// Returns [`DecideError`] if a subset construction exceeds the
    /// engine's state budget. Errors are not cached; retrying the same
    /// query on an engine with a larger budget starts from whatever
    /// intermediates did fit.
    pub fn decide(&mut self, e: &Expr, f: &Expr) -> Result<bool, DecideError> {
        self.sync_scratch_epoch();
        self.stats.nka_queries += 1;
        let key = pair_key(e, f);
        if let Some(&hit) = self.nka_verdicts.get(&key) {
            self.stats.answer_hits += 1;
            if self.restored_nka_pairs.contains(&key) {
                self.snapshot_hits += 1;
            }
            return Ok(hit);
        }
        let verdict = match self.starfree_fast_path(e, f) {
            Some(verdict) => verdict,
            None => self.decide_generic(e, f)?,
        };
        if key.0.is_scratch() || key.1.is_scratch() {
            self.note_scratch_key();
        }
        self.nka_verdicts.insert(key, verdict);
        Ok(verdict)
    }

    /// The tiered star-free fast path: `Some(verdict)` if the pair is
    /// star-free and decidable within the multiset budget, `None` to
    /// fall back to the generic pipeline. Exact whenever it answers.
    fn starfree_fast_path(&mut self, e: &Expr, f: &Expr) -> Option<bool> {
        let max_words = self.opts.starfree_max_words;
        if max_words == 0 || e.star_height() != 0 || f.star_height() != 0 {
            return None;
        }
        // Tier 2: gate-by-gate prefix normalization of the `·`-spines.
        let (re, rf) = match starfree::prefix_normalize(e, f) {
            PrefixOutcome::Decided(verdict) => {
                self.stats.prefix_hits += 1;
                return Some(verdict);
            }
            PrefixOutcome::Residual(re, rf) => (re, rf),
        };
        // Tier 1: compare the residual products' word multisets.
        let mut scratch_inserts = 0;
        let left =
            starfree::eval_product(&re, &mut self.multisets, max_words, &mut scratch_inserts);
        let right = match left {
            Some(_) => {
                starfree::eval_product(&rf, &mut self.multisets, max_words, &mut scratch_inserts)
            }
            None => None,
        };
        for _ in 0..scratch_inserts {
            self.note_scratch_key();
        }
        match (left, right) {
            (Some(left), Some(right)) => {
                self.stats.starfree_hits += 1;
                Some(left == right)
            }
            _ => {
                self.stats.fastpath_fallbacks += 1;
                None
            }
        }
    }

    /// The generic automaton pipeline (Thompson → ε-elimination →
    /// ∞-support DFAs → exact rational zeroness), shared by every query
    /// the fast path does not answer.
    fn decide_generic(&mut self, e: &Expr, f: &Expr) -> Result<bool, DecideError> {
        let alphabet = shared_alphabet(e, f);
        // Step 1: the ∞-supports must coincide as regular languages.
        let de = self.infinity_dfa(e, &alphabet)?;
        let df = self.infinity_dfa(f, &alphabet)?;
        if !de.equivalent(&df) {
            return Ok(false);
        }
        // Step 2: the finite parts must agree outside the ∞-support.
        let ce = self.compile(e);
        let cf = self.compile(f);
        let diff = ce.rational().difference(cf.rational(), |w| -w.clone());
        let restricted = restrict_to_language(&diff, &de.complement());
        Ok(if self.opts.float_ablation {
            is_zero_series_f64(&restricted, 1e-9)
        } else {
            is_zero_series(&restricted)
        })
    }

    /// Decides `⊢KA e = f`, i.e. language equivalence of the supports
    /// (Kozen's completeness theorem; equivalently `⊢NKA 1*e = 1*f`).
    ///
    /// # Errors
    ///
    /// Returns [`DecideError`] on subset-construction overflow.
    pub fn ka_equiv(&mut self, e: &Expr, f: &Expr) -> Result<bool, DecideError> {
        self.sync_scratch_epoch();
        self.stats.ka_queries += 1;
        let key = pair_key(e, f);
        if let Some(&hit) = self.ka_verdicts.get(&key) {
            self.stats.answer_hits += 1;
            if self.restored_ka_pairs.contains(&key) {
                self.snapshot_hits += 1;
            }
            return Ok(hit);
        }
        let alphabet = shared_alphabet(e, f);
        let de = self.support_dfa(e, &alphabet)?;
        let df = self.support_dfa(f, &alphabet)?;
        let verdict = de.equivalent(&df);
        if key.0.is_scratch() || key.1.is_scratch() {
            self.note_scratch_key();
        }
        self.ka_verdicts.insert(key, verdict);
        Ok(verdict)
    }

    /// Decides a batch of NKA queries, returning one verdict per input
    /// pair **in input order**. Expressions shared between pairs are
    /// compiled once; a budget overflow in one pair does not abort the
    /// rest of the batch.
    pub fn decide_all(&mut self, pairs: &[(Expr, Expr)]) -> Vec<Result<bool, DecideError>> {
        pairs.iter().map(|(e, f)| self.decide(e, f)).collect()
    }

    /// Membership `w ∈ L(e)` on the memoized support DFA.
    ///
    /// # Errors
    ///
    /// Returns [`DecideError`] on subset-construction overflow.
    pub fn ka_accepts(&mut self, e: &Expr, word: &[Symbol]) -> Result<bool, DecideError> {
        self.sync_scratch_epoch();
        let mut alphabet: BTreeSet<Symbol> = e.atoms();
        alphabet.extend(word.iter().copied());
        let alphabet: Vec<Symbol> = alphabet.into_iter().collect();
        let dfa = self.support_dfa(e, &alphabet)?;
        Ok(dfa.accepts(word))
    }

    /// The persistent-keyed NKA verdict-cache entries, sorted by key —
    /// the exportable warm state (scratch-keyed entries name terms whose
    /// ids are reused across epochs and are never exported). Each entry
    /// is `(lhs, rhs, verdict)` with `lhs <= rhs` (the normalized pair).
    #[must_use]
    pub fn export_nka_verdicts(&self) -> Vec<(ExprId, ExprId, bool)> {
        export_verdicts(&self.nka_verdicts)
    }

    /// The persistent-keyed KA verdict-cache entries, sorted by key.
    #[must_use]
    pub fn export_ka_verdicts(&self) -> Vec<(ExprId, ExprId, bool)> {
        export_verdicts(&self.ka_verdicts)
    }

    /// The persistent-keyed star-free word-multiset memo, sorted by key.
    #[must_use]
    pub fn export_multisets(&self) -> Vec<(ExprId, Arc<WordMultiset>)> {
        let mut out: Vec<(ExprId, Arc<WordMultiset>)> = self
            .multisets
            .iter()
            .filter(|(id, _)| !id.is_scratch())
            .map(|(&id, ms)| (id, Arc::clone(ms)))
            .collect();
        out.sort_by_key(|&(id, _)| id);
        out
    }

    /// Seeds an NKA verdict computed in this process under persistent
    /// ids — e.g. re-caching a scratch-decided `prog_eq` verdict under
    /// its promoted encodings so it survives scope retirement and is
    /// exportable. Scratch keys are refused (the entry would dangle
    /// after the epoch advances). Counts as neither a query nor a hit.
    pub fn seed_nka_verdict(&mut self, e: &Expr, f: &Expr, verdict: bool) {
        let key = pair_key(e, f);
        if key.0.is_scratch() || key.1.is_scratch() {
            return;
        }
        self.nka_verdicts.insert(key, verdict);
    }

    /// Restores a snapshot-loaded NKA verdict. Like
    /// [`Decider::seed_nka_verdict`], but the key is also marked as
    /// restored so later hits on it count in
    /// [`Decider::snapshot_hits`].
    pub fn restore_nka_verdict(&mut self, e: &Expr, f: &Expr, verdict: bool) {
        let key = pair_key(e, f);
        if key.0.is_scratch() || key.1.is_scratch() {
            return;
        }
        self.nka_verdicts.insert(key, verdict);
        self.restored_nka_pairs.insert(key);
        self.restored_entries += 1;
    }

    /// Restores a snapshot-loaded KA verdict; see
    /// [`Decider::restore_nka_verdict`].
    pub fn restore_ka_verdict(&mut self, e: &Expr, f: &Expr, verdict: bool) {
        let key = pair_key(e, f);
        if key.0.is_scratch() || key.1.is_scratch() {
            return;
        }
        self.ka_verdicts.insert(key, verdict);
        self.restored_ka_pairs.insert(key);
        self.restored_entries += 1;
    }

    /// Restores a snapshot-loaded star-free word multiset.
    pub fn restore_multiset(&mut self, e: &Expr, multiset: Arc<WordMultiset>) {
        if e.id().is_scratch() {
            return;
        }
        self.multisets.insert(e.id(), multiset);
        self.restored_entries += 1;
    }

    /// Verdict-cache hits whose entry was restored from a snapshot —
    /// the "snapshot hit" tier of the tiered lookup (every such hit is
    /// also an `answer_hit`).
    #[must_use]
    pub fn snapshot_hits(&self) -> u64 {
        self.snapshot_hits
    }

    /// Cache entries (verdicts + multisets) restored into this engine
    /// from a snapshot.
    #[must_use]
    pub fn restored_entries(&self) -> u64 {
        self.restored_entries
    }

    /// The compiled ε-free automaton of `e`, memoized.
    fn compile(&mut self, e: &Expr) -> Arc<Compiled> {
        if let Some(hit) = self.exprs.get(&e.id()) {
            self.stats.compile_hits += 1;
            return Arc::clone(hit);
        }
        self.stats.compile_misses += 1;
        let wfa = thompson(e).eliminate_epsilon();
        let compiled = Arc::new(Compiled {
            wfa,
            rational: OnceLock::new(),
        });
        if e.id().is_scratch() {
            self.note_scratch_key();
        }
        self.exprs.insert(e.id(), Arc::clone(&compiled));
        compiled
    }

    /// The dense id of `alphabet` in this engine's alphabet table. The
    /// probe borrows the slice; only a first-seen alphabet is copied in.
    fn alphabet_id(&mut self, alphabet: &[Symbol]) -> AlphabetId {
        if let Some(&id) = self.alphabets.get(alphabet) {
            return id;
        }
        let id = AlphabetId::try_from(self.alphabets.len()).expect("alphabet table overflow");
        self.alphabets.insert(alphabet.into(), id);
        id
    }

    /// The determinized ∞-support of `e` over `alphabet`, memoized.
    fn infinity_dfa(&mut self, e: &Expr, alphabet: &[Symbol]) -> Result<Arc<Dfa>, DecideError> {
        let key = (e.id(), self.alphabet_id(alphabet));
        if let Some(hit) = self.infinity_dfas.get(&key) {
            self.stats.dfa_hits += 1;
            return Ok(Arc::clone(hit));
        }
        let compiled = self.compile(e);
        self.stats.dfa_misses += 1;
        let dfa = Arc::new(
            compiled
                .wfa
                .infinity_support()
                .determinize(alphabet, self.opts.max_dfa_states)?,
        );
        if key.0.is_scratch() {
            self.note_scratch_key();
        }
        self.infinity_dfas.insert(key, Arc::clone(&dfa));
        Ok(dfa)
    }

    /// The determinized support of `e` over `alphabet`, memoized.
    fn support_dfa(&mut self, e: &Expr, alphabet: &[Symbol]) -> Result<Arc<Dfa>, DecideError> {
        let key = (e.id(), self.alphabet_id(alphabet));
        if let Some(hit) = self.support_dfas.get(&key) {
            self.stats.dfa_hits += 1;
            return Ok(Arc::clone(hit));
        }
        let compiled = self.compile(e);
        self.stats.dfa_misses += 1;
        let dfa =
            Arc::new(support_nfa(&compiled.wfa).determinize(alphabet, self.opts.max_dfa_states)?);
        if key.0.is_scratch() {
            self.note_scratch_key();
        }
        self.support_dfas.insert(key, Arc::clone(&dfa));
        Ok(dfa)
    }
}

/// The canonical (sorted) union of the two expressions' atom sets — the
/// only alphabet on which their series can differ.
fn shared_alphabet(e: &Expr, f: &Expr) -> Vec<Symbol> {
    let mut atoms = e.atoms();
    atoms.extend(f.atoms());
    atoms.into_iter().collect()
}

/// The persistent-keyed entries of a verdict cache, sorted for a
/// deterministic dump order.
fn export_verdicts(cache: &HashMap<(ExprId, ExprId), bool>) -> Vec<(ExprId, ExprId, bool)> {
    let mut out: Vec<(ExprId, ExprId, bool)> = cache
        .iter()
        .filter(|((a, b), _)| !a.is_scratch() && !b.is_scratch())
        .map(|(&(a, b), &v)| (a, b, v))
        .collect();
    out.sort_by_key(|&(a, b, _)| (a, b));
    out
}

/// Verdicts are symmetric; the cache key is the unordered pair of
/// interned ids, normalized by the total order on [`ExprId`] so one
/// allocation-free probe answers both orientations.
fn pair_key(e: &Expr, f: &Expr) -> (ExprId, ExprId) {
    let (a, b) = (e.id(), f.id());
    (a.min(b), a.max(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(src: &str) -> Expr {
        src.parse().unwrap()
    }

    #[test]
    fn engine_agrees_with_one_shot_decision() {
        let mut engine = Decider::new();
        let cases = [
            ("(p q)* p", "p (q p)*", true),
            ("1 + p p*", "p*", true),
            ("p + p", "p", false),
            ("1* p", "1* q", false),
        ];
        for (l, r, expected) in cases {
            assert_eq!(engine.decide(&e(l), &e(r)).unwrap(), expected, "{l} = {r}");
        }
    }

    #[test]
    fn repeated_query_hits_the_verdict_cache() {
        let mut engine = Decider::new();
        let (l, r) = (e("(p + q)*"), e("(p* q)* p*"));
        assert!(engine.decide(&l, &r).unwrap());
        let misses_after_first = engine.stats().compile_misses;
        assert!(engine.decide(&l, &r).unwrap());
        let s = engine.stats();
        assert_eq!(s.answer_hits, 1);
        // The second query did not recompile anything.
        assert_eq!(s.compile_misses, misses_after_first);
        // Symmetric orientation is also a hit.
        assert!(engine.decide(&r, &l).unwrap());
        assert_eq!(engine.stats().answer_hits, 2);
    }

    #[test]
    fn shared_expressions_compile_once_across_queries() {
        let mut engine = Decider::new();
        let (x, y, z) = (e("(a b)*"), e("1 + a (b a)* b"), e("a*"));
        assert!(engine.decide(&x, &y).unwrap());
        assert!(!engine.decide(&x, &z).unwrap());
        let s = engine.stats();
        // Three distinct expressions over the same alphabet {a, b}: three
        // compilations, and the second query reuses x's automaton and DFA.
        assert_eq!(s.compile_misses, 3);
        assert!(s.compile_hits >= 1 || s.dfa_hits >= 1);
    }

    #[test]
    fn budget_exhaustion_is_an_error_not_a_panic() {
        // One DFA state can never fit the subset construction of a live
        // ∞-support automaton over a non-empty alphabet.
        let mut engine = Decider::with_budget(1);
        let err = engine.decide(&e("1* a"), &e("1* a a")).unwrap_err();
        assert!(err.to_string().contains("out of budget"), "{err}");
        // The engine stays usable, and a bigger budget succeeds.
        let mut engine = Decider::with_budget(100_000);
        assert!(!engine.decide(&e("1* a"), &e("1* a a")).unwrap());
    }

    #[test]
    fn zero_budget_errors_on_the_first_query_not_vacuously_succeeds() {
        // Regression: `with_budget(0)` used to admit the initial subset
        // for free, so trivial queries (empty alphabet, self-comparisons)
        // "succeeded" under a budget that can hold no state at all.
        // The star-free fast path is forced off so every pair actually
        // reaches the subset construction this test is about.
        let mut engine = Decider::with_options(DecideOptions {
            max_dfa_states: 0,
            starfree_max_words: 0,
            ..DecideOptions::default()
        });
        for (l, r) in [("1", "1"), ("0", "0"), ("a", "a"), ("p q", "p q")] {
            let err = engine.decide(&e(l), &e(r)).unwrap_err();
            assert!(
                err.to_string().contains("out of budget"),
                "{l} = {r}: {err}"
            );
        }
        assert!(engine.ka_equiv(&e("a"), &e("a")).is_err());
        assert!(engine.ka_accepts(&e("a"), &[Symbol::intern("a")]).is_err());
    }

    #[test]
    fn starfree_queries_never_touch_the_dfa_budget() {
        // Star-free pairs are answered by the multiset tiers, which
        // build no automaton at all — so even a zero DFA-state budget
        // decides them exactly (the budget governs subset construction
        // only). KA queries on the same engine still hit the budget.
        let mut engine = Decider::with_budget(0);
        for (l, r, expected) in [
            ("1", "1", true),
            ("a", "a", true),
            ("p q", "p q", true),
            ("p + p", "p", false),
            ("a (b + c)", "a b + a c", true),
        ] {
            assert_eq!(engine.decide(&e(l), &e(r)).unwrap(), expected, "{l} = {r}");
        }
        let s = engine.stats();
        assert_eq!(s.dfa_misses, 0);
        assert_eq!(s.compile_misses, 0);
        assert_eq!(s.prefix_hits + s.starfree_hits, 5);
        assert!(engine.ka_equiv(&e("a"), &e("a")).is_err());
    }

    #[test]
    fn fast_path_tiers_and_counters() {
        let mut engine = Decider::new();
        // Tier 2: long equal spines cancel gate by gate…
        assert!(engine
            .decide(&e("a b c d e f"), &e("a b 1 c d e f"))
            .unwrap());
        // …and divergent atoms refute without evaluating the tail.
        assert!(!engine.decide(&e("a b c d e f"), &e("a b x d e f")).unwrap());
        let s = engine.stats();
        assert_eq!(s.prefix_hits, 2);
        assert_eq!(s.starfree_hits, 0);
        // Tier 1: compound divergence needs the multisets.
        assert!(engine.decide(&e("a (b + c)"), &e("a (c + b)")).unwrap());
        assert!(!engine.decide(&e("a (b + b)"), &e("a b")).unwrap());
        let s = engine.stats();
        assert_eq!(s.starfree_hits, 2);
        assert_eq!(s.fastpath_fallbacks, 0);
        // Starred queries bypass the tiers entirely.
        assert!(engine.decide(&e("(p q)* p"), &e("p (q p)*")).unwrap());
        let s = engine.stats();
        assert_eq!(s.prefix_hits + s.starfree_hits, 4);
        assert!(s.compile_misses >= 2);
        // Fast-path verdicts populate the same verdict cache.
        assert!(engine
            .decide(&e("a b 1 c d e f"), &e("a b c d e f"))
            .unwrap());
        assert_eq!(engine.stats().answer_hits, 1);
    }

    #[test]
    fn fast_path_budget_falls_back_to_generic_exactly() {
        // (a + b)^4 has 16 words; a 10-word cap forces the generic
        // pipeline, which must still answer — identically.
        let l = e("(a + b) (a + b) (a + b) (a + b)");
        let r = e("(b + a) (a + b) (a + b) (a + b)");
        let mut tiny = Decider::with_options(DecideOptions {
            starfree_max_words: 10,
            ..DecideOptions::default()
        });
        assert!(tiny.decide(&l, &r).unwrap());
        let s = tiny.stats();
        assert_eq!(s.fastpath_fallbacks, 1);
        assert_eq!(s.starfree_hits, 0);
        assert!(s.compile_misses >= 2, "generic path must have run");
        let mut roomy = Decider::new();
        assert!(roomy.decide(&l, &r).unwrap());
        assert_eq!(roomy.stats().starfree_hits, 1);
    }

    #[test]
    fn fast_path_agrees_with_generic_on_starfree_family() {
        // Differential pinning at the engine level: every star-free
        // pair must get byte-identical verdicts from the tiers and the
        // automaton pipeline.
        let exprs = [
            "0",
            "1",
            "a",
            "b",
            "a b",
            "b a",
            "a + b",
            "b + a",
            "a + a",
            "1 + a",
            "a (b + c)",
            "a b + a c",
            "(a + b) c",
            "a c + b c",
            "(a + 1) (b + 1)",
            "a b + a + b + 1",
            "(a + a) b",
            "a b + a b",
            "0 a",
            "a 0 + 0",
        ];
        let mut fast = Decider::new();
        let mut generic = Decider::with_options(DecideOptions {
            starfree_max_words: 0,
            ..DecideOptions::default()
        });
        for l in &exprs {
            for r in &exprs {
                assert_eq!(
                    fast.decide(&e(l), &e(r)).unwrap(),
                    generic.decide(&e(l), &e(r)).unwrap(),
                    "fast path diverged from generic on {l} = {r}"
                );
            }
        }
        // The forced-off engine never took a tier.
        let s = generic.stats();
        assert_eq!(s.prefix_hits + s.starfree_hits + s.fastpath_fallbacks, 0);
        // The default engine answered every fresh pair in-tier.
        let s = fast.stats();
        assert_eq!(s.compile_misses, 0);
        assert_eq!(
            s.prefix_hits + s.starfree_hits + s.answer_hits,
            s.nka_queries
        );
    }

    #[test]
    fn scratch_keyed_multisets_are_evicted_on_epoch_advance() {
        let mut engine = Decider::new();
        {
            let _scope = nka_syntax::ScratchScope::enter();
            let l = e("msA").mul(&e("msB")).mul(&e("msA + msB"));
            let r = e("msA").mul(&e("msB")).mul(&e("msB + msA"));
            assert!(l.id().is_scratch());
            assert!(engine.decide(&l, &r).unwrap());
            assert_eq!(engine.stats().starfree_hits, 1);
        }
        // The scope retired: the next entry point must purge the
        // scratch-keyed multisets along with every other cache.
        assert!(!engine.decide(&e("msA"), &e("msB")).unwrap());
        assert_eq!(engine.scratch_purges(), 1);
        assert!(engine.multisets.keys().all(|id| !id.is_scratch()));
    }

    #[test]
    fn stats_deltas_between_snapshots() {
        let mut engine = Decider::new();
        let before = engine.stats();
        assert!(engine.decide(&e("(p q)* p"), &e("p (q p)*")).unwrap());
        let mid = engine.stats();
        let first = mid.delta_since(&before);
        assert_eq!(first.nka_queries, 1);
        assert_eq!(first.compile_misses, 2);
        assert_eq!(first.answer_hits, 0);
        assert!(engine.decide(&e("(p q)* p"), &e("p (q p)*")).unwrap());
        let second = engine.stats().delta_since(&mid);
        assert_eq!(second.nka_queries, 1);
        assert_eq!(second.answer_hits, 1);
        assert_eq!(second.compile_misses, 0);
        // Swapped snapshots saturate instead of underflowing.
        assert_eq!(before.delta_since(&mid).nka_queries, 0);
    }

    #[test]
    fn decide_all_preserves_input_order_and_survives_overflow() {
        let mut engine = Decider::with_budget(64);
        let pairs = vec![
            (e("p"), e("p")),
            (e("p + p"), e("p")),
            (e("(p q)* p"), e("p (q p)*")),
        ];
        let verdicts = engine.decide_all(&pairs);
        assert_eq!(verdicts.len(), 3);
        assert_eq!(verdicts[0].as_ref().unwrap(), &true);
        assert_eq!(verdicts[1].as_ref().unwrap(), &false);
        assert_eq!(verdicts[2].as_ref().unwrap(), &true);
    }

    #[test]
    fn decide_all_batch_shares_the_expression_cache() {
        let mut engine = Decider::new();
        let x = e("(a + b)*");
        let pairs: Vec<(Expr, Expr)> = ["(a* b)* a*", "a* (b a*)*", "a* b*"]
            .iter()
            .map(|r| (x, e(r)))
            .collect();
        let verdicts = engine.decide_all(&pairs);
        assert_eq!(
            verdicts.into_iter().map(Result::unwrap).collect::<Vec<_>>(),
            vec![true, true, false]
        );
        // x compiled once, reused twice.
        assert_eq!(engine.stats().compile_misses, 4);
        assert!(engine.stats().compile_hits >= 2 || engine.stats().dfa_hits >= 2);
    }

    #[test]
    fn ka_and_nka_caches_are_independent() {
        let mut engine = Decider::new();
        let (l, r) = (e("p + p"), e("p"));
        assert!(engine.ka_equiv(&l, &r).unwrap());
        assert!(!engine.decide(&l, &r).unwrap());
        // Same pair again, both sides cached.
        assert!(engine.ka_equiv(&l, &r).unwrap());
        assert!(!engine.decide(&l, &r).unwrap());
        assert_eq!(engine.stats().answer_hits, 2);
    }

    #[test]
    fn float_ablation_option_is_honoured() {
        let mut engine = Decider::with_options(DecideOptions {
            float_ablation: true,
            ..DecideOptions::default()
        });
        assert!(engine.decide(&e("(p q)* p"), &e("p (q p)*")).unwrap());
        assert!(!engine.decide(&e("p + p"), &e("p")).unwrap());
    }

    #[test]
    fn scratch_keyed_entries_are_evicted_on_epoch_advance() {
        let mut engine = Decider::new();
        let (l, r) = (e("epochA"), e("epochB"));
        assert!(!engine.decide(&l, &r).unwrap());
        {
            let _scope = nka_syntax::ScratchScope::enter();
            let scratch = l.star().mul(&r.star()).star();
            assert!(scratch.id().is_scratch());
            // Caches a compiled automaton, DFA, and verdict under a
            // scratch id.
            assert!(engine.decide(&scratch, &scratch).unwrap());
            assert_eq!(engine.scratch_purges(), 0);
        }
        // The scope retired; the next entry point must purge the
        // scratch-keyed entries (their id may name a different term
        // now) while the persistent verdict stays a cache hit.
        let hits_before = engine.stats().answer_hits;
        assert!(!engine.decide(&l, &r).unwrap());
        assert_eq!(engine.stats().answer_hits, hits_before + 1);
        assert_eq!(engine.scratch_purges(), 1);
        // A second retirement with no scratch-keyed entries left is a
        // no-op, not another scan.
        {
            let _scope = nka_syntax::ScratchScope::enter();
            let _ = l.star().star().star();
        }
        assert!(!engine.decide(&l, &r).unwrap());
        assert_eq!(engine.scratch_purges(), 1);
    }

    #[test]
    fn exports_skip_scratch_keys_and_restores_count_snapshot_hits() {
        let mut engine = Decider::new();
        let (l, r) = (e("(p q)* p"), e("p (q p)*"));
        assert!(engine.decide(&l, &r).unwrap());
        {
            // Scratch-decided verdicts must not leak into the export:
            // their ids are reused once the scope retires.
            let _scope = nka_syntax::ScratchScope::enter();
            let s = l.star().mul(&r.star());
            assert!(s.id().is_scratch());
            assert!(engine.decide(&s, &s).unwrap());
        }
        let exported = engine.export_nka_verdicts();
        assert_eq!(exported.len(), 1);
        // Replaying the export into a fresh engine answers from the
        // restored tier: an answer hit that is also a snapshot hit,
        // with nothing recompiled.
        let mut fresh = Decider::new();
        for (a, b, v) in &exported {
            let (a, b) = (Expr::from_id(*a).unwrap(), Expr::from_id(*b).unwrap());
            fresh.restore_nka_verdict(&a, &b, *v);
        }
        assert_eq!(fresh.restored_entries(), 1);
        assert!(fresh.decide(&l, &r).unwrap());
        assert_eq!(fresh.snapshot_hits(), 1);
        assert_eq!(fresh.stats().answer_hits, 1);
        assert_eq!(fresh.stats().compile_misses, 0);
    }

    #[test]
    fn seeded_verdicts_hit_in_process_not_as_snapshot_hits() {
        let mut engine = Decider::new();
        let (l, r) = (e("seedL"), e("seedR"));
        engine.seed_nka_verdict(&l, &r, false);
        assert!(!engine.decide(&l, &r).unwrap());
        assert_eq!(engine.stats().answer_hits, 1);
        assert_eq!(engine.snapshot_hits(), 0);
        // Scratch keys are refused outright.
        {
            let _scope = nka_syntax::ScratchScope::enter();
            let s = l.star().star();
            engine.seed_nka_verdict(&s, &s, true);
            engine.restore_ka_verdict(&s, &s, true);
        }
        assert_eq!(engine.export_nka_verdicts().len(), 1);
        assert_eq!(engine.export_ka_verdicts().len(), 0);
        assert_eq!(engine.restored_entries(), 0);
    }

    #[test]
    fn ka_accepts_uses_the_memoized_support() {
        let mut engine = Decider::new();
        let a = Symbol::intern("a");
        let b = Symbol::intern("b");
        assert!(engine.ka_accepts(&e("a b*"), &[a, b, b]).unwrap());
        assert!(!engine.ka_accepts(&e("a b*"), &[b]).unwrap());
    }
}
