//! Section 5 — validation of quantum compiler optimizing rules.
//!
//! Both rules follow the paper's three-step recipe: *program encoding*,
//! *condition formulation*, *NKA derivation*. The derivations below are
//! the paper's, transcribed into checked proof objects; the semantic
//! validators build the four programs of Figure 4 on concrete quantum
//! instances and compare denotations directly — which is exactly the
//! exponential-size-matrix route the algebra avoids (benchmarked in
//! `nka-bench` as `scale_motivation`).

use nka_core::{theorems, EqChain, Judgment, Proof};
use nka_qprog::Program;
use nka_syntax::Expr;
use qsim_linalg::CMatrix;
use qsim_quantum::{gates, states, Measurement, RegisterSpace, Superoperator};

/// A Horn formula together with its checked proof: hypotheses, the proved
/// judgment, and the proof object.
#[derive(Debug, Clone)]
pub struct CheckedHornProof {
    /// The hypotheses of the Horn clause.
    pub hypotheses: Vec<Judgment>,
    /// The conclusion.
    pub conclusion: Judgment,
    /// The proof of the conclusion from the hypotheses.
    pub proof: Proof,
}

impl CheckedHornProof {
    /// Re-checks the proof and asserts it proves the recorded conclusion.
    ///
    /// # Panics
    ///
    /// Panics if the proof fails to check or proves something else.
    pub fn assert_checked(&self) {
        let j = self
            .proof
            .check(&self.hypotheses)
            .unwrap_or_else(|err| panic!("proof failed to check: {err}"));
        assert_eq!(j, self.conclusion, "proof proves a different judgment");
    }

    /// Proof size (rule applications), for benchmark reporting.
    pub fn proof_size(&self) -> usize {
        self.proof.size()
    }
}

fn e(src: &str) -> Expr {
    src.parse().expect("static expression parses")
}

/// §5.1, formula (5.1.1) — **loop unrolling**:
///
/// ```text
/// m1 m1 = m1 ∧ m1 m0 = 0  ⊢  (m0 p)* m1 = (m0 p (m0 p + m1 1))* m1
/// ```
///
/// The derivation is the paper's, step for step (distribute, denesting,
/// fixed-point, hypothesis absorptions, fixed-point again, unrolling).
pub fn loop_unrolling_proof() -> CheckedHornProof {
    let hypotheses = vec![
        Judgment::Eq(e("m1 m1"), e("m1")), // Hyp(0): projectivity
        Judgment::Eq(e("m1 m0"), e("0")),  // Hyp(1): orthogonality
    ];
    let x = e("m0 p (m0 p)"); // the doubled body (m0 p)(m0 p)
    let y = e("m0 p m1");
    let start = e("(m0 p (m0 p + m1 1))* m1");

    let chain = EqChain::with_hyps(&start, &hypotheses)
        // = (m0 p m0 p + m0 p m1)* m1                      (distributive-law)
        .semiring(&e("(m0 p (m0 p) + m0 p m1)* m1"))
        .expect("5.1 distribute")
        // = (m0p m0p)* ((m0 p m1) (m0p m0p)*)* m1          (denesting)
        .rw_at(&[0], theorems::denesting_right(&x, &y))
        .expect("5.1 denesting")
        // = (x)* (m0pm1 (1 + x x*))* m1                    (fixed-point)
        .rw_rev_at(&[0, 1, 0, 1], theorems::fixed_point_right(&x))
        .expect("5.1 fixed-point 1")
        // Expose m1 m0 inside and kill the tail with Hyp(1).
        .semiring(&e(
            "(m0 p (m0 p))* (m0 p m1 + m0 p ((m1 m0) (p (m0 p) ((m0 p (m0 p))*))))* m1",
        ))
        .expect("5.1 expose m1 m0")
        .hyp(1)
        .expect("5.1 absorb m1 m0")
        .semiring(&e("(m0 p (m0 p))* (m0 p m1)* m1"))
        .expect("5.1 cleanup 1")
        // = (x)* (1 + y (1 + y y*)) m1                     (fixed-point ×2)
        .rw_rev_at(&[0, 1], theorems::fixed_point_right(&y))
        .expect("5.1 fixed-point 2")
        .rw_rev_at(&[0, 1, 1, 1], theorems::fixed_point_right(&y))
        .expect("5.1 fixed-point 3")
        // Kill the y·y·y* tail (contains m1 m0) and expose m1 m1.
        .semiring(&e(
            "(m0 p (m0 p))* (m1 + m0 p (m1 m1) + m0 p ((m1 m0) (p m1 ((m0 p m1)* m1))))",
        ))
        .expect("5.1 expose hyps")
        .hyp(1)
        .expect("5.1 absorb m1 m0 again")
        .hyp(0)
        .expect("5.1 projectivity")
        // = ((m0p)(m0p))* (1 + m0 p) m1                    (distributive-law)
        .semiring(&e("(((m0 p) (m0 p))* (1 + m0 p)) m1"))
        .expect("5.1 regroup")
        // = (m0 p)* m1                                     (unrolling)
        .rw_at(&[0], theorems::unrolling(&e("m0 p")))
        .expect("5.1 unrolling");

    let conclusion = Judgment::Eq(e("(m0 p)* m1"), start);
    CheckedHornProof {
        hypotheses,
        conclusion,
        proof: chain.into_proof().flip(),
    }
}

/// The generalized **boundary lemma** behind §5.2 and Appendix B:
///
/// ```text
/// u u⁻¹ = 1 ∧ u⁻¹ u = 1 ∧ u m = m u  ⊢  (u q u⁻¹)* m = u q* m u⁻¹
/// ```
///
/// `hyp_uu`, `hyp_uinvu`, `hyp_um` are proofs of the three hypotheses
/// (typically [`Proof::Hyp`] into `hyps`); the statement trees are
/// `((u q) u⁻¹)* m` and `((u q*) m) u⁻¹`.
///
/// # Panics
///
/// Panics only on an internal transcription bug (the steps cannot fail
/// for well-typed arguments; the tests instantiate it both abstractly and
/// inside §5.2 / Appendix B).
#[allow(clippy::too_many_arguments)] // mirrors the lemma's seven premises
pub fn boundary_lemma(
    u: &Expr,
    u_inv: &Expr,
    q: &Expr,
    m: &Expr,
    hyp_uu: Proof,
    hyp_uinvu: Proof,
    hyp_um: Proof,
    hyps: &[Judgment],
) -> Proof {
    let one = Expr::one();
    let start = u.mul(q).mul(u_inv).star().mul(m);

    // Sub-lemma A: u⁻¹ m = m u⁻¹.
    let commute_inv = EqChain::with_hyps(&u_inv.mul(m), hyps)
        .semiring(&u_inv.mul(m).mul(&one))
        .expect("boundary A pad")
        .rw_rev_at(&[1], hyp_uu.clone())
        .expect("boundary A insert uu⁻¹")
        .semiring(&u_inv.mul(&m.mul(u)).mul(u_inv))
        .expect("boundary A reshape")
        .rw_rev_at(&[0, 1], hyp_um.clone())
        .expect("boundary A commute")
        .semiring(&u_inv.mul(u).mul(&m.mul(u_inv)))
        .expect("boundary A regroup")
        .rw_at(&[0], hyp_uinvu.clone())
        .expect("boundary A cancel")
        .semiring(&m.mul(u_inv))
        .expect("boundary A unit")
        .into_proof();

    // Sub-lemma B: (u m) u⁻¹ = m.
    let umu = EqChain::with_hyps(&u.mul(m).mul(u_inv), hyps)
        .rw_at(&[0], hyp_um)
        .expect("boundary B commute")
        .semiring(&m.mul(&u.mul(u_inv)))
        .expect("boundary B regroup")
        .rw_at(&[1], hyp_uu)
        .expect("boundary B cancel")
        .semiring(m)
        .expect("boundary B unit")
        .into_proof();

    let middle = u
        .mul(m)
        .mul(u_inv)
        .add(&u.mul(&q.star().mul(q)).mul(m).mul(u_inv));

    // LHS ⟶ middle.
    let lhs_proof = EqChain::with_hyps(&start, hyps)
        .semiring(&u.mul(&q.mul(u_inv)).star().mul(m))
        .expect("boundary assoc")
        .rw_rev_at(&[0], theorems::product_star(u, &q.mul(u_inv)))
        .expect("boundary product-star")
        .semiring(
            &one.add(&u.mul(&q.mul(&u_inv.mul(u)).star()).mul(&q.mul(u_inv)))
                .mul(m),
        )
        .expect("boundary expose inverse")
        .rw_at(&[0, 1, 0, 1, 0, 1], hyp_uinvu)
        .expect("boundary cancel inverse")
        .semiring(&m.add(&u.mul(&q.star().mul(q)).mul(&u_inv.mul(m))))
        .expect("boundary distribute")
        .rw_at(&[1, 1], commute_inv)
        .expect("boundary commute past m")
        .rw_rev_at(&[0], umu)
        .expect("boundary reinsert conjugation")
        .semiring(&middle)
        .expect("boundary middle shape")
        .into_proof();

    // RHS ⟶ middle.
    let rhs = u.mul(&q.star()).mul(m).mul(u_inv);
    let rhs_proof = EqChain::with_hyps(&rhs, hyps)
        .rw_rev_at(&[0, 0, 1], theorems::fixed_point_left(q))
        .expect("boundary rhs fixed-point")
        .semiring(&middle)
        .expect("boundary rhs middle shape")
        .into_proof();

    lhs_proof.then(rhs_proof.flip())
}

/// §5.2, formula (5.2.1) — **loop boundary**:
///
/// ```text
/// u u⁻¹ = 1 ∧ u⁻¹ u = 1 ∧ u m0 = m0 u ∧ u m1 = m1 u
///   ⊢  (m0 u p u⁻¹)* m1 = u (m0 p)* m1 u⁻¹
/// ```
pub fn loop_boundary_proof() -> CheckedHornProof {
    let hypotheses = vec![
        Judgment::Eq(e("u u_inv"), e("1")), // Hyp(0)
        Judgment::Eq(e("u_inv u"), e("1")), // Hyp(1)
        Judgment::Eq(e("u m0"), e("m0 u")), // Hyp(2)
        Judgment::Eq(e("u m1"), e("m1 u")), // Hyp(3)
    ];
    let (u, u_inv, q, m1) = (e("u"), e("u_inv"), e("m0 p"), e("m1"));
    let start = e("(m0 u p u_inv)* m1");
    let lemma_lhs = u.mul(&q).mul(&u_inv).star().mul(&m1);
    let boundary = boundary_lemma(
        &u,
        &u_inv,
        &q,
        &m1,
        Proof::Hyp(0),
        Proof::Hyp(1),
        Proof::Hyp(3),
        &hypotheses,
    );
    let chain = EqChain::with_hyps(&start, &hypotheses)
        .semiring(&e("((m0 u) (p u_inv))* m1"))
        .expect("5.2 expose m0 u")
        .rw_rev_at(&[0, 0, 0], Proof::Hyp(2))
        .expect("5.2 commute")
        .semiring(&lemma_lhs)
        .expect("5.2 lemma shape")
        .rw_at(&[], boundary)
        .expect("5.2 boundary lemma")
        .semiring(&e("u (m0 p)* m1 u_inv"))
        .expect("5.2 final shape");
    let conclusion = Judgment::Eq(start, e("u (m0 p)* m1 u_inv"));
    CheckedHornProof {
        hypotheses,
        conclusion,
        proof: chain.into_proof(),
    }
}

/// Builds the `Unrolling1` program of Figure 4 on `qubits` qubits:
/// `while M[q] = 0 do P done` with `M` a first-qubit projective
/// measurement (outcome 0 continues, matching the encoding
/// `(m0 p)* m1`) and `P` a layer of Hadamards.
pub fn unrolling1_program(qubits: usize) -> Program {
    let (meas, body) = unrolling_ingredients(qubits);
    Program::while_loop(["mU1", "mU0"], &meas, body)
}

/// Builds `Unrolling2` of Figure 4:
/// `while M[q] = 0 do (P; if M[q] = 0 then P) done`.
pub fn unrolling2_program(qubits: usize) -> Program {
    let (meas, body) = unrolling_ingredients(qubits);
    let inner = Program::if_then_else(
        ["mU1", "mU0"],
        &meas,
        body.clone(),
        Program::skip(body.dim()),
    );
    Program::while_loop(["mU1", "mU0"], &meas, body.then(&inner))
}

/// The shared pieces of the unrolling programs: the measurement whose
/// *continue* branch (outcome 1 of the `while`) projects onto `q₀ = 0`,
/// and a Hadamard-layer body.
fn unrolling_ingredients(qubits: usize) -> (Measurement, Program) {
    let mut space = RegisterSpace::new();
    let regs: Vec<_> = (0..qubits)
        .map(|i| space.add_register(&format!("q{i}"), 2))
        .collect();
    let proj0 = space.embed(&states::basis_density(2, 0), &[regs[0]]);
    // Outcome 0 = exit (projector I − P₀), outcome 1 = continue (P₀).
    let complement = &CMatrix::identity(space.dim()) - &proj0;
    let meas = Measurement::new(vec![complement, proj0]);
    let mut u = CMatrix::identity(space.dim());
    for &r in &regs {
        u = &space.embed(&gates::hadamard(), &[r]) * &u;
    }
    let body = Program::unitary("pU", &u);
    (meas, body)
}

/// Semantic validation of §5.1 on `qubits` qubits: the measurement is
/// projective, so `⟦Unrolling1⟧ = ⟦Unrolling2⟧` must hold exactly.
pub fn verify_loop_unrolling_semantically(qubits: usize, tol: f64) -> bool {
    let p1 = unrolling1_program(qubits);
    let p2 = unrolling2_program(qubits);
    programs_equal_on_probes(&p1, &p2, tol)
}

/// Builds the `Boundary1`/`Boundary2` pair of Figure 4 on one work qubit
/// `w` plus `qubits` data qubits: the loop conjugates `P` with `U`
/// (rotations on the data only), while measuring `w`.
pub fn boundary_programs(qubits: usize) -> (Program, Program) {
    let mut space = RegisterSpace::new();
    let w = space.add_register("w", 2);
    let data: Vec<_> = (0..qubits)
        .map(|i| space.add_register(&format!("d{i}"), 2))
        .collect();
    let proj0 = space.embed(&states::basis_density(2, 0), &[w]);
    // Continue (outcome 1) while w = 0.
    let complement = &CMatrix::identity(space.dim()) - &proj0;
    let meas = Measurement::new(vec![complement, proj0]);

    let mut u_mat = CMatrix::identity(space.dim());
    let mut p_mat = CMatrix::identity(space.dim());
    for &r in &data {
        u_mat = &space.embed(&gates::rz(0.7), &[r]) * &u_mat;
        p_mat = &space.embed(&gates::hadamard(), &[r]) * &p_mat;
    }
    // P must also act on w so the loop can terminate.
    p_mat = &space.embed(&gates::hadamard(), &[w]) * &p_mat;
    let u = Program::unitary("uB", &u_mat);
    let u_inv = Program::unitary("uB_inv", &u_mat.adjoint());
    let p = Program::unitary("pB", &p_mat);

    let boundary1 = Program::while_loop(["mB1", "mB0"], &meas, u.then(&p).then(&u_inv));
    let boundary2 = u
        .then(&Program::while_loop(["mB1", "mB0"], &meas, p))
        .then(&u_inv);
    (boundary1, boundary2)
}

/// Semantic validation of §5.2: `U` acts on the data qubits only, so it
/// commutes with the measurement on `w` and `⟦Boundary1⟧ = ⟦Boundary2⟧`.
pub fn verify_loop_boundary_semantically(qubits: usize, tol: f64) -> bool {
    let (b1, b2) = boundary_programs(qubits);
    programs_equal_on_probes(&b1, &b2, tol)
}

/// Compares two programs on a PSD spanning probe family (equality on the
/// family implies equality of the denotations, by linearity).
pub fn programs_equal_on_probes(p1: &Program, p2: &Program, tol: f64) -> bool {
    assert_eq!(p1.dim(), p2.dim());
    let dim = p1.dim();
    for rho in psd_probe_family(dim) {
        if !p1.run(&rho).approx_eq(&p2.run(&rho), tol) {
            return false;
        }
    }
    true
}

/// A PSD family spanning Hermitian-matrix space.
pub fn psd_probe_family(dim: usize) -> Vec<CMatrix> {
    let mut probes: Vec<CMatrix> = Vec::new();
    for i in 0..dim {
        probes.push(states::basis_density(dim, i));
    }
    for i in 0..dim {
        for j in (i + 1)..dim {
            let mut plus = vec![qsim_linalg::Complex::ZERO; dim];
            plus[i] = qsim_linalg::Complex::ONE;
            plus[j] = qsim_linalg::Complex::ONE;
            probes.push(states::pure_state(&plus));
            let mut phase = vec![qsim_linalg::Complex::ZERO; dim];
            phase[i] = qsim_linalg::Complex::ONE;
            phase[j] = qsim_linalg::Complex::I;
            probes.push(states::pure_state(&phase));
        }
    }
    probes
}

/// Checks the §5.1 hypotheses hold for the concrete measurement
/// (Corollary 4.3's premise-discharge step): `M₁∘M₁ = M₁` and
/// `M₁∘M₀ = 0` as superoperators.
pub fn unrolling_hypotheses_hold(qubits: usize, tol: f64) -> bool {
    let (meas, _) = unrolling_ingredients(qubits);
    let m0 = meas.branch(0);
    let m1 = meas.branch(1);
    m1.compose(&m1).approx_eq(&m1, tol)
        && m1
            .compose(&m0)
            .approx_eq(&Superoperator::zero(meas.dim()), tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_unrolling_proof_checks() {
        let horn = loop_unrolling_proof();
        horn.assert_checked();
        assert_eq!(
            horn.conclusion.to_string(),
            "(m0 p)* m1 = (m0 p (m0 p + m1 1))* m1"
        );
    }

    #[test]
    fn loop_boundary_proof_checks() {
        let horn = loop_boundary_proof();
        horn.assert_checked();
        assert_eq!(
            horn.conclusion.to_string(),
            "(m0 u p u_inv)* m1 = u (m0 p)* m1 u_inv"
        );
    }

    #[test]
    fn unrolling_semantics_one_qubit() {
        assert!(unrolling_hypotheses_hold(1, 1e-9));
        assert!(verify_loop_unrolling_semantically(1, 1e-7));
    }

    #[test]
    fn unrolling_semantics_two_qubits() {
        assert!(verify_loop_unrolling_semantically(2, 1e-7));
    }

    #[test]
    fn boundary_semantics() {
        assert!(verify_loop_boundary_semantically(1, 1e-7));
        assert!(verify_loop_boundary_semantically(2, 1e-7));
    }

    #[test]
    fn boundary_lemma_standalone() {
        let hyps = vec![
            Judgment::Eq(e("s s_inv"), e("1")),
            Judgment::Eq(e("s_inv s"), e("1")),
            Judgment::Eq(e("s mm"), e("mm s")),
        ];
        let proof = boundary_lemma(
            &e("s"),
            &e("s_inv"),
            &e("body"),
            &e("mm"),
            Proof::Hyp(0),
            Proof::Hyp(1),
            Proof::Hyp(2),
            &hyps,
        );
        let j = proof.check(&hyps).unwrap();
        assert_eq!(j.to_string(), "(s body s_inv)* mm = s body* mm s_inv");
    }

    #[test]
    fn proofs_are_compact() {
        // The motivation claim: algebraic certificates are small and
        // dimension-independent.
        assert!(loop_unrolling_proof().proof_size() < 5000);
        assert!(loop_boundary_proof().proof_size() < 5000);
    }
}
