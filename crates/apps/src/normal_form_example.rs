//! Section 6 — the worked normal-form example (`Original` ≡ `Constructed`).
//!
//! `Original` runs two while-loops in sequence and resets a guard;
//! `Constructed` merges them into a single loop dispatching on a classical
//! guard `g ∈ {0, 1, 2}`. This module contains:
//!
//! * the paper's full NKA derivation, transcribed as checked proofs — the
//!   intermediate claims `g₁X* = g₁` and `g₂X* = (m₂₁p₂)*(g₂ + m₂₀g₀)`
//!   and the main chain down to `Enc(Original)` ([`section6_proof`]);
//! * the concrete programs over `H_p ⊗ C₃` (a qubit plus a qutrit guard)
//!   with semantic equivalence and hypothesis checks.
//!
//! The one-step commutation sub-lemmas are found automatically by the
//! bounded rewrite prover where convenient; the star manipulations are
//! hand-transcribed from the paper.

use nka_core::prover::Prover;
use nka_core::{theorems, EqChain, Judgment, Proof};
use nka_qprog::Program;
use nka_syntax::Expr;
use qsim_linalg::CMatrix;
use qsim_quantum::{gates, Measurement, RegisterSpace, Superoperator};

use crate::compiler_opt::{programs_equal_on_probes, CheckedHornProof};

fn e(src: &str) -> Expr {
    src.parse().expect("static expression parses")
}

/// The §6 hypothesis list, in a fixed order:
///
/// * guard assignments/tests commute with the `H`-side symbols;
/// * `gᵢ gⱼ = gⱼ` (assignment overwrite);
/// * `gᵢ·g>ⱼ` and `gᵢ·g≤ⱼ` resolve to `gᵢ` or `0` by comparison.
pub fn hypotheses() -> Vec<Judgment> {
    let mut hyps = Vec::new();
    let h_side = ["m10", "m11", "m20", "m21", "p1", "p2"];
    let guard_ops = ["g0", "g1", "g2", "g_gt0", "g_gt1", "g_le0", "g_le1"];
    for g in guard_ops {
        for m in h_side {
            hyps.push(Judgment::Eq(e(&format!("{g} {m}")), e(&format!("{m} {g}"))));
        }
    }
    for i in 0..3 {
        for j in 0..3 {
            hyps.push(Judgment::Eq(e(&format!("g{i} g{j}")), e(&format!("g{j}"))));
        }
    }
    for i in 0..3u32 {
        for j in 0..2u32 {
            let gt = if i > j {
                format!("g{i}")
            } else {
                "0".to_owned()
            };
            hyps.push(Judgment::Eq(e(&format!("g{i} g_gt{j}")), e(&gt)));
            let le = if i <= j {
                format!("g{i}")
            } else {
                "0".to_owned()
            };
            hyps.push(Judgment::Eq(e(&format!("g{i} g_le{j}")), e(&le)));
        }
    }
    hyps
}

/// Fetches the hypothesis whose left-hand side parses to `lhs`.
///
/// # Panics
///
/// Panics if no such hypothesis exists.
pub fn hyp(hyps: &[Judgment], lhs: &str) -> Proof {
    let target = e(lhs);
    let idx = hyps
        .iter()
        .position(|j| j.lhs() == &target)
        .unwrap_or_else(|| panic!("no hypothesis with LHS {lhs}"));
    Proof::Hyp(idx)
}

/// `Enc(Original) = (m11 p1)* m10 (m21 p2)* m20 g0`.
pub fn enc_original() -> Expr {
    e("(m11 p1)* m10 (m21 p2)* m20 g0")
}

/// `Enc(Constructed)` as printed in Section 6.
pub fn enc_constructed() -> Expr {
    e("g1 (g_gt0 (g_gt1 (m21 p2 + m20 g0) + g_le1 (m11 p1 + m10 g2)))* g_le0")
}

/// `X = g>0 g>1 (m21 p2 + m20 g0)` — the `g = 2` dispatch branch.
fn x_branch() -> Expr {
    e("g_gt0 g_gt1 (m21 p2 + m20 g0)")
}

/// `Y = g>0 g≤1 (m11 p1 + m10 g2)` — the `g = 1` dispatch branch.
fn y_branch() -> Expr {
    e("g_gt0 g_le1 (m11 p1 + m10 g2)")
}

/// Auto-proves a short hypothesis-shuffling equality with the rewrite
/// prover.
///
/// # Panics
///
/// Panics if the prover cannot close the goal within its budget.
fn shuffle(hyps: &[Judgment], lhs: &Expr, rhs: &Expr) -> Proof {
    let mut prover = Prover::new(hyps);
    prover.add_hypothesis_rules();
    prover
        .with_max_expansions(6000)
        .with_max_term_size(40)
        .prove_eq(lhs, rhs)
        .unwrap_or_else(|| panic!("prover could not close {lhs} = {rhs}"))
}

/// Claim 1 of the §6 derivation: `g1 X* = g1`.
pub fn claim_g1_xstar(hyps: &[Judgment]) -> Proof {
    let x = x_branch();
    let start = e("g1").mul(&x.star());
    EqChain::with_hyps(&start, hyps)
        .rw_rev_at(&[1], theorems::fixed_point_right(&x))
        .expect("claim1 fixed-point")
        .semiring(&e(
            "g1 + (g1 g_gt0) (g_gt1 ((m21 p2 + m20 g0) ((g_gt0 g_gt1 (m21 p2 + m20 g0))*)))",
        ))
        .expect("claim1 expose g1 g>0")
        .rw(hyp(hyps, "g1 g_gt0"))
        .expect("claim1 g1 g>0")
        .semiring(&e(
            "g1 + (g1 g_gt1) ((m21 p2 + m20 g0) ((g_gt0 g_gt1 (m21 p2 + m20 g0))*))",
        ))
        .expect("claim1 expose g1 g>1")
        .rw(hyp(hyps, "g1 g_gt1"))
        .expect("claim1 g1 g>1")
        .semiring(&e("g1"))
        .expect("claim1 collapse")
        .into_proof()
}

/// Claim 2 of the §6 derivation: `g2 X* = (m21 p2)* (g2 + m20 g0)`.
pub fn claim_g2_xstar(hyps: &[Judgment]) -> Proof {
    let a = e("g_gt0 g_gt1 m21 p2");
    let b = e("g_gt0 g_gt1 m20 g0");
    let x = x_branch();
    let start = e("g2").mul(&x.star());
    // g2 A = (m21 p2) g2 — a pure hypothesis shuffle.
    let l1 = shuffle(hyps, &e("g2").mul(&a), &e("(m21 p2) g2"));
    // g2 B = m20 g0.
    let l2 = shuffle(hyps, &e("g2").mul(&b), &e("m20 g0"));

    EqChain::with_hyps(&start, hyps)
        .semiring(&e("g2").mul(&a.add(&b).star()))
        .expect("claim2 split")
        .rw_at(&[1], theorems::denesting_right(&a, &b))
        .expect("claim2 denesting")
        .rw_rev_at(&[1, 1, 0, 1], theorems::fixed_point_right(&a))
        .expect("claim2 fixed-point inner")
        // Kill B·A (it contains g0 g>0 = 0).
        .semiring(&e(
            "g2 ((g_gt0 g_gt1 m21 p2)* (g_gt0 g_gt1 m20 g0 + (g_gt0 g_gt1 m20) ((g0 g_gt0) (g_gt1 (m21 p2))) ((g_gt0 g_gt1 m21 p2)*))*)",
        ))
        .expect("claim2 expose g0 g>0")
        .rw(hyp(hyps, "g0 g_gt0"))
        .expect("claim2 kill B·A")
        .semiring(&e("g2 (g_gt0 g_gt1 m21 p2)*").mul(&b.star()))
        .expect("claim2 cleanup")
        // g2 A* = (m21 p2)* g2 by star-rewrite with l1.
        .rw_at(
            &[0],
            theorems::star_rewrite(&e("g2"), &a, &e("m21 p2"), l1, hyps),
        )
        .expect("claim2 star-rewrite")
        // B* = 1 + B + B·B·B*, and B·B dies on g0 g>0 = 0.
        .rw_rev_at(&[1], theorems::fixed_point_right(&b))
        .expect("claim2 unfold B*")
        .rw_rev_at(&[1, 1, 1], theorems::fixed_point_right(&b))
        .expect("claim2 unfold B* twice")
        .semiring(&e(
            "(m21 p2)* g2 (1 + g_gt0 g_gt1 m20 g0 + (g_gt0 g_gt1 m20) ((g0 g_gt0) (g_gt1 (m20 g0))) ((g_gt0 g_gt1 m20 g0)*))",
        ))
        .expect("claim2 expose g0 g>0 again")
        .rw(hyp(hyps, "g0 g_gt0"))
        .expect("claim2 kill B·B")
        // Distribute g2 over (1 + B) and resolve with l2.
        .semiring(&e("(m21 p2)* (g2 + g2 (g_gt0 g_gt1 m20 g0))"))
        .expect("claim2 distribute")
        .rw_at(&[1, 1], l2)
        .expect("claim2 g2 B")
        .into_proof()
}

/// The main §6 theorem: `Enc(Constructed) = Enc(Original)` under
/// [`hypotheses`] — Theorem 1.1 then gives
/// `⟦Constructed⟧ = ⟦Original⟧`.
pub fn section6_proof() -> CheckedHornProof {
    let hyps = hypotheses();
    let x = x_branch();
    let y = y_branch();
    let claim1 = claim_g1_xstar(&hyps);
    let claim2 = claim_g2_xstar(&hyps);

    let y1 = e("g_gt0 g_le1 m11 p1");
    let y2 = e("g_gt0 g_le1 m10 g2");
    let w1 = y1.mul(&x.star()); // (g>0 g≤1 m11 p1) X*
    let w2 = y2.mul(&x.star());
    let z = w2.mul(&w1.star()); // W2 W1*
    let c = e("m10 (m21 p2)* (g2 + m20 g0)");
    let xs = "(g_gt0 g_gt1 (m21 p2 + m20 g0))*";
    let w1s = format!("((g_gt0 g_le1 m11 p1) ({xs}))*");

    // L3: g1 W1 = (m11 p1) g1 — uses claim 1 at the end.
    let l3 = EqChain::with_hyps(&e("g1").mul(&w1), &hyps)
        .semiring(&e(&format!("(g1 g_gt0) ((g_le1 (m11 p1)) ({xs}))")))
        .expect("L3 step 1")
        .rw(hyp(&hyps, "g1 g_gt0"))
        .expect("L3 g1 g>0")
        .semiring(&e(&format!("(g1 g_le1) ((m11 p1) ({xs}))")))
        .expect("L3 step 2")
        .rw(hyp(&hyps, "g1 g_le1"))
        .expect("L3 g1 g≤1")
        .semiring(&e(&format!("(g1 m11) (p1 ({xs}))")))
        .expect("L3 step 3")
        .rw(hyp(&hyps, "g1 m11"))
        .expect("L3 commute m11")
        .semiring(&e(&format!("m11 ((g1 p1) ({xs}))")))
        .expect("L3 step 4")
        .rw(hyp(&hyps, "g1 p1"))
        .expect("L3 commute p1")
        .semiring(&e(&format!("m11 (p1 (g1 ({xs})))")))
        .expect("L3 step 5")
        .rw_at(&[1, 1], claim1.clone())
        .expect("L3 claim1")
        .semiring(&e("(m11 p1) g1"))
        .expect("L3 final")
        .into_proof();

    // L4: g1 Z = C.
    let l4 = EqChain::with_hyps(&e("g1").mul(&z), &hyps)
        .semiring(&e(&format!(
            "(g1 g_gt0) ((g_le1 (m10 g2)) (({xs}) ({w1s})))"
        )))
        .expect("L4 step 1")
        .rw(hyp(&hyps, "g1 g_gt0"))
        .expect("L4 g1 g>0")
        .semiring(&e(&format!("(g1 g_le1) ((m10 g2) (({xs}) ({w1s})))")))
        .expect("L4 step 2")
        .rw(hyp(&hyps, "g1 g_le1"))
        .expect("L4 g1 g≤1")
        .semiring(&e(&format!("(g1 m10) (g2 (({xs}) ({w1s})))")))
        .expect("L4 step 3")
        .rw(hyp(&hyps, "g1 m10"))
        .expect("L4 commute m10")
        .semiring(&e(&format!("m10 ((g1 g2) (({xs}) ({w1s})))")))
        .expect("L4 step 4")
        .rw(hyp(&hyps, "g1 g2"))
        .expect("L4 overwrite")
        .semiring(&e(&format!("m10 ((g2 ({xs})) ({w1s}))")))
        .expect("L4 step 5")
        .rw_at(&[1, 0], claim2.clone())
        .expect("L4 claim2")
        // Now kill (g2 + m20 g0)·W1 inside … (1 + W1 W1*).
        .rw_rev_at(&[1, 1], theorems::fixed_point_right(&w1))
        .expect("L4 unfold W1*")
        .semiring(&e(&format!(
            "m10 ((m21 p2)* ((g2 + m20 g0) + ((g2 g_gt0) ((g_le1 (m11 p1)) (({xs}) ({w1s}))) + m20 ((g0 g_gt0) ((g_le1 (m11 p1)) (({xs}) ({w1s})))))))"
        )))
        .expect("L4 expose killers")
        .rw(hyp(&hyps, "g2 g_gt0"))
        .expect("L4 g2 g>0")
        .rw(hyp(&hyps, "g0 g_gt0"))
        .expect("L4 g0 g>0")
        .semiring(&e(&format!(
            "m10 ((m21 p2)* ((g2 + m20 g0) + (g2 g_le1) ((m11 p1) (({xs}) ({w1s})))))"
        )))
        .expect("L4 expose g2 g≤1")
        .rw(hyp(&hyps, "g2 g_le1"))
        .expect("L4 g2 g≤1")
        .semiring(&c)
        .expect("L4 final")
        .into_proof();

    // L5: C Z = 0.
    let l5 = EqChain::with_hyps(&c.mul(&z), &hyps)
        .semiring(&e(&format!(
            "(m10 (m21 p2)*) ((g2 g_gt0) ((g_le1 (m10 g2)) (({xs}) ({w1s}))) + m20 ((g0 g_gt0) ((g_le1 (m10 g2)) (({xs}) ({w1s})))))"
        )))
        .expect("L5 expose")
        .rw(hyp(&hyps, "g2 g_gt0"))
        .expect("L5 g2 g>0")
        .rw(hyp(&hyps, "g0 g_gt0"))
        .expect("L5 g0 g>0")
        .semiring(&e(&format!(
            "(m10 (m21 p2)*) ((g2 g_le1) ((m10 g2) (({xs}) ({w1s}))))"
        )))
        .expect("L5 expose g2 g≤1")
        .rw(hyp(&hyps, "g2 g_le1"))
        .expect("L5 g2 g≤1")
        .semiring(&e("0"))
        .expect("L5 zero")
        .into_proof();

    // Main chain.
    let chain = EqChain::with_hyps(&enc_constructed(), &hyps)
        .semiring(&e("g1").mul(&x.add(&y).star()).mul(&e("g_le0")))
        .expect("main split X+Y")
        .rw_at(&[0, 1], theorems::denesting_right(&x, &y))
        .expect("main denesting 1")
        .semiring(
            &e("g1")
                .mul(&x.star())
                .mul(&y.mul(&x.star()).star())
                .mul(&e("g_le0")),
        )
        .expect("main reassoc")
        .rw_at(&[0, 0], claim1)
        .expect("main claim1")
        // Y X* = W1 + W2, then denest again.
        .semiring(&e("g1").mul(&w1.add(&w2).star()).mul(&e("g_le0")))
        .expect("main split W1+W2")
        .rw_at(&[0, 1], theorems::denesting_right(&w1, &w2))
        .expect("main denesting 2")
        .semiring(
            &e("g1")
                .mul(&w1.star())
                .mul(&w2.mul(&w1.star()).star())
                .mul(&e("g_le0")),
        )
        .expect("main reassoc 2")
        // g1 W1* = (m11 p1)* g1 by star-rewrite with L3.
        .rw_at(
            &[0, 0],
            theorems::star_rewrite(&e("g1"), &w1, &e("m11 p1"), l3, &hyps),
        )
        .expect("main star-rewrite")
        // Reshape so (g1, Z*) is a unit: ((m11 p1)* (g1 Z*)) g_le0.
        .semiring(&e("(m11 p1)*").mul(&e("g1").mul(&z.star())).mul(&e("g_le0")))
        .expect("main isolate g1 Z*")
        .rw_rev_at(&[0, 1, 1], theorems::fixed_point_right(&z))
        .expect("main unfold Z*")
        .semiring(
            &e("(m11 p1)*")
                .mul(&e("g1").add(&e("g1").mul(&z).mul(&z.star())))
                .mul(&e("g_le0")),
        )
        .expect("main expose g1 Z")
        .rw_at(&[0, 1, 1, 0], l4)
        .expect("main L4")
        .rw_rev_at(&[0, 1, 1, 1], theorems::fixed_point_right(&z))
        .expect("main unfold Z* again")
        .semiring(
            &e("(m11 p1)*")
                .mul(&e("g1").add(&c.add(&c.mul(&z).mul(&z.star()))))
                .mul(&e("g_le0")),
        )
        .expect("main expose C Z")
        .rw_at(&[0, 1, 1, 1, 0], l5)
        .expect("main L5")
        // Distribute g≤0 and resolve the guard tests.
        .semiring(&e(
            "(m11 p1)* ((g1 g_le0) + (m10 (m21 p2)*) ((g2 g_le0) + m20 (g0 g_le0)))",
        ))
        .expect("main distribute g≤0")
        .rw(hyp(&hyps, "g1 g_le0"))
        .expect("main g1 g≤0")
        .rw(hyp(&hyps, "g2 g_le0"))
        .expect("main g2 g≤0")
        .rw(hyp(&hyps, "g0 g_le0"))
        .expect("main g0 g≤0")
        .semiring(&enc_original())
        .expect("main final");

    CheckedHornProof {
        hypotheses: hyps,
        conclusion: Judgment::Eq(enc_constructed(), enc_original()),
        proof: chain.into_proof(),
    }
}

/// The concrete `Original` program over `H_p ⊗ C₃`.
pub fn original_program() -> (Program, usize) {
    let (space, p, g) = example_space();
    let dim = space.dim();
    let m1 = qubit_measurement(&space, p, 0.0);
    let m2 = qubit_measurement(&space, p, std::f64::consts::FRAC_PI_4);
    let p1 = Program::unitary("p1", &space.embed(&gates::ry(1.1), &[p]));
    let p2 = Program::unitary("p2", &space.embed(&gates::ry(0.7), &[p]));
    let w1 = Program::while_loop(["m10", "m11"], &m1, p1);
    let w2 = Program::while_loop(["m20", "m21"], &m2, p2);
    let reset = guard_assign(&space, g, 0, "g0");
    (w1.then(&w2).then(&reset), dim)
}

/// The concrete `Constructed` program of Section 6.
pub fn constructed_program() -> (Program, usize) {
    let (space, p, g) = example_space();
    let dim = space.dim();
    let m1 = qubit_measurement(&space, p, 0.0);
    let m2 = qubit_measurement(&space, p, std::f64::consts::FRAC_PI_4);
    let p1 = Program::unitary("p1", &space.embed(&gates::ry(1.1), &[p]));
    let p2 = Program::unitary("p2", &space.embed(&gates::ry(0.7), &[p]));
    let set = |v: usize| guard_assign(&space, g, v, &format!("g{v}"));

    // if M2[p] = 1 then P2 else g := |0⟩.
    let branch2 = Program::if_then_else(["m20", "m21"], &m2, p2, set(0));
    // if M1[p] = 1 then P1 else g := |2⟩.
    let branch1 = Program::if_then_else(["m10", "m11"], &m1, p1, set(2));
    // if Meas[g] > 1 then branch2 else branch1.
    let body = Program::if_then_else(
        ["g_le1", "g_gt1"],
        &guard_test(&space, g, &[2]),
        branch2,
        branch1,
    );
    let w = Program::while_loop(["g_le0", "g_gt0"], &guard_test(&space, g, &[1, 2]), body);
    (set(1).then(&w), dim)
}

fn example_space() -> (
    RegisterSpace,
    qsim_quantum::registers::RegisterId,
    qsim_quantum::registers::RegisterId,
) {
    let mut space = RegisterSpace::new();
    let p = space.add_register("p", 2);
    let g = space.add_register("g", 3);
    (space, p, g)
}

/// A projective qubit measurement in the basis rotated by `angle`
/// (outcome 1 — the loop-continue outcome — projects onto the rotated
/// `|1⟩`).
fn qubit_measurement(
    space: &RegisterSpace,
    p: qsim_quantum::registers::RegisterId,
    angle: f64,
) -> Measurement {
    let u = gates::ry(angle);
    let one = &(&u * &qsim_quantum::states::basis_density(2, 1)) * &u.adjoint();
    let proj1 = space.embed(&one, &[p]);
    let proj0 = &CMatrix::identity(space.dim()) - &proj1;
    Measurement::new(vec![proj0, proj1])
}

fn guard_assign(
    space: &RegisterSpace,
    g: qsim_quantum::registers::RegisterId,
    value: usize,
    name: &str,
) -> Program {
    let kraus: Vec<CMatrix> = (0..3)
        .map(|j| {
            let ketv = CMatrix::basis_ket(3, value);
            let ketj = CMatrix::basis_ket(3, j);
            space.embed(&(&ketv * &ketj.adjoint()), &[g])
        })
        .collect();
    Program::elementary(
        name,
        Superoperator::from_kraus(space.dim(), space.dim(), kraus),
    )
}

/// Two-outcome guard test: outcome 1 iff `g ∈ in_set`.
fn guard_test(
    space: &RegisterSpace,
    g: qsim_quantum::registers::RegisterId,
    in_set: &[usize],
) -> Measurement {
    let mut p_in = CMatrix::zeros(3, 3);
    for &v in in_set {
        p_in[(v, v)] = qsim_linalg::Complex::ONE;
    }
    let p_out = &CMatrix::identity(3) - &p_in;
    Measurement::new(vec![space.embed(&p_out, &[g]), space.embed(&p_in, &[g])])
}

/// Semantic validation: `⟦Original⟧ = ⟦Constructed⟧` on the PSD probe
/// family of the full space (both programs reset the guard at the end —
/// `Constructed` exits only with `g = 0`).
pub fn verify_section6_semantically(tol: f64) -> bool {
    let (original, dim) = original_program();
    let (constructed, dim2) = constructed_program();
    assert_eq!(dim, dim2);
    programs_equal_on_probes(&original, &constructed, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypotheses_are_wellformed() {
        let hyps = hypotheses();
        assert_eq!(hyps.len(), 7 * 6 + 9 + 12);
    }

    #[test]
    fn claim1_checks() {
        let hyps = hypotheses();
        let proof = claim_g1_xstar(&hyps);
        let j = proof.check(&hyps).unwrap();
        assert_eq!(j.lhs(), &e("g1").mul(&x_branch().star()));
        assert_eq!(j.rhs(), &e("g1"));
    }

    #[test]
    fn claim2_checks() {
        let hyps = hypotheses();
        let proof = claim_g2_xstar(&hyps);
        let j = proof.check(&hyps).unwrap();
        assert_eq!(j.rhs(), &e("(m21 p2)* (g2 + m20 g0)"));
    }

    #[test]
    fn section6_theorem_checks() {
        let horn = section6_proof();
        horn.assert_checked();
        assert_eq!(
            horn.conclusion.to_string(),
            format!("{} = {}", enc_constructed(), enc_original())
        );
    }

    #[test]
    fn semantic_equivalence() {
        assert!(verify_section6_semantically(1e-7));
    }

    #[test]
    fn y_branch_is_used_by_the_main_proof() {
        // Guard against drift between the printed encoding and the
        // derivation's X/Y split.
        use nka_core::semiring_nf::semiring_equal;
        let split = x_branch().add(&y_branch());
        let printed = e("g_gt0 (g_gt1 (m21 p2 + m20 g0) + g_le1 (m11 p1 + m10 g2))");
        assert!(semiring_equal(&split, &printed));
    }
}
