//! The paper's worked applications, reproduced end-to-end.
//!
//! Each module pairs a **machine-checked algebraic proof** (the paper's
//! derivation, transcribed step by step into `nka-core` proof objects)
//! with a **semantic validation** (concrete programs on the quantum
//! substrate whose denotations are compared directly):
//!
//! * [`compiler_opt`] — Section 5: validation of quantum compiler
//!   optimization rules (loop unrolling §5.1, loop boundary §5.2);
//! * [`qsp`] — Appendix B: the quantum-signal-processing optimization
//!   (canceling the `S`/`S⁻¹` conjugation inside the QSP loop), at the
//!   gate level;
//! * [`normal_form_example`] — Section 6: the two-loops-into-one worked
//!   example (`Original` ≡ `Constructed`), with the paper's full NKA
//!   derivation;
//! * [`completeness`] — Appendix C.5: the interpretation used in the
//!   completeness proof of Theorem 4.2, connecting the quantum path model
//!   back to formal power series.
//!
//! # Examples
//!
//! Verify the loop-unrolling rule both ways:
//!
//! ```
//! use nka_apps::compiler_opt;
//!
//! // Algebraic: the Horn formula (5.1.1), checked.
//! let proof = compiler_opt::loop_unrolling_proof();
//! proof.assert_checked();
//!
//! // Semantic: ⟦Unrolling1⟧ = ⟦Unrolling2⟧ on a 1-qubit instance.
//! assert!(compiler_opt::verify_loop_unrolling_semantically(1, 1e-8));
//! ```

pub mod compiler_opt;
pub mod completeness;
pub mod normal_form_example;
pub mod qsp;
pub mod rule_library;

pub use compiler_opt::CheckedHornProof;
