//! An extended catalog of quantum compiler optimizing rules (Section 5).
//!
//! Section 5 validates two rules in detail (loop unrolling, loop
//! boundary — see [`crate::compiler_opt`]); it notes that the rules were
//! *"carefully selected [...] with reasonable quantum counterparts, as
//! well as quantum-specific rules found in real quantum applications"*.
//! This module extends the selection in the same three-step discipline —
//! program encoding, condition formulation, NKA derivation — to the
//! peephole and control-flow rules below. Every rule carries
//!
//! 1. a machine-checked NKA Horn proof ([`CheckedHornProof`]), and
//! 2. a concrete program pair whose hypotheses are discharged on actual
//!    superoperators and whose denotations are compared on a
//!    PSD-spanning probe family (the Corollary 4.3 pipeline).
//!
//! | Rule | Statement | Hypotheses |
//! |---|---|---|
//! | dead branch     | `m0 p0 + m1 p1 = m0 p0` | `m1 = 0` |
//! | branch fusion   | `m0 p + m1 p = m p` | `m0 + m1 = m` |
//! | gate fusion     | `(m1 (u1 u2) p)* m0 = (m1 u12 p)* m0` | `u1 u2 = u12` |
//! | dead loop       | `(m1 p)* m0 = m0` | `m1 = 0` |
//! | loop peeling    | `(m1 p)* m0 = m0 + m1 (p ((m1 p)* m0))` | — |
//! | double reset    | `r r = r` (used as `r (r p) = r p`) | `r r = r` |
//! | double measure  | `m0 (m0 p) = m0 p` | `m0 m0 = m0` |
//! | abort sink      | `0 p = 0` (abort encodes as `0`) | — |
//! | uncompute       | `(u1 u2)(u2⁻¹ u1⁻¹) = 1` | group hypotheses `uᵢuᵢ⁻¹ = uᵢ⁻¹uᵢ = 1` |
//!
//! The catalog is iterable via [`catalog`] so examples, tests and the
//! `fig4_compiler_rules` bench can sweep every rule uniformly.

use crate::compiler_opt::{programs_equal_on_probes, CheckedHornProof};
use nka_core::{theorems, EqChain, Judgment};
use nka_qprog::Program;
use nka_syntax::Expr;
use qsim_linalg::CMatrix;
use qsim_quantum::{gates, states, Measurement, RegisterSpace, Superoperator};

fn e(src: &str) -> Expr {
    src.parse().expect("static expression parses")
}

/// **Dead-branch elimination**: a measurement branch that can never fire
/// (its branch superoperator is zero on the reachable states — here,
/// globally) may be removed together with its code:
///
/// ```text
/// m1 = 0  ⊢  m0 p0 + m1 p1 = m0 p0
/// ```
pub fn dead_branch_proof() -> CheckedHornProof {
    let hypotheses = vec![Judgment::Eq(e("m1"), e("0"))];
    let start = e("m0 p0 + m1 p1");
    let chain = EqChain::with_hyps(&start, &hypotheses)
        .hyp_at(&[1, 0], 0)
        .expect("dead-branch: m1 → 0")
        .semiring(&e("m0 p0"))
        .expect("dead-branch: 0·p1 vanishes");
    let conclusion = chain.judgment();
    CheckedHornProof {
        hypotheses,
        conclusion,
        proof: chain.into_proof(),
    }
}

/// **Branch fusion** (common code after a measurement): when both
/// branches run the same program the case collapses to "measure, then
/// run" — the measurement superoperator `m = m0 + m1` is the sum of its
/// branches:
///
/// ```text
/// m0 + m1 = m  ⊢  m0 p + m1 p = m p
/// ```
///
/// Classically this is `if b then p else p ≡ p`; quantumly the
/// measurement's collapse cannot be dropped, only *factored*.
pub fn branch_fusion_proof() -> CheckedHornProof {
    let hypotheses = vec![Judgment::Eq(e("m0 + m1"), e("m"))];
    let start = e("m0 p + m1 p");
    let chain = EqChain::with_hyps(&start, &hypotheses)
        .semiring(&e("(m0 + m1) p"))
        .expect("branch-fusion: factor p")
        .hyp_at(&[0], 0)
        .expect("branch-fusion: m0 + m1 → m");
    let conclusion = chain.judgment();
    CheckedHornProof {
        hypotheses,
        conclusion,
        proof: chain.into_proof(),
    }
}

/// **Gate fusion** inside a loop body: two adjacent unitaries merge into
/// their product, under `*` by congruence:
///
/// ```text
/// u1 u2 = u12  ⊢  (m1 ((u1 u2) p))* m0 = (m1 (u12 p))* m0
/// ```
pub fn gate_fusion_proof() -> CheckedHornProof {
    let hypotheses = vec![Judgment::Eq(e("u1 u2"), e("u12"))];
    let start = e("(m1 ((u1 u2) p))* m0");
    let chain = EqChain::with_hyps(&start, &hypotheses)
        .hyp_at(&[0, 0, 1, 0], 0)
        .expect("gate-fusion: u1 u2 → u12 under star");
    let conclusion = chain.judgment();
    CheckedHornProof {
        hypotheses,
        conclusion,
        proof: chain.into_proof(),
    }
}

/// **Dead-loop elimination**: a loop whose continue branch never fires
/// reduces to its exit measurement:
///
/// ```text
/// m1 = 0  ⊢  (m1 p)* m0 = m0
/// ```
///
/// The star collapses through `0* = 1`, itself derived from the
/// fixed-point law (`0* = 1 + 0·0* = 1`).
pub fn dead_loop_proof() -> CheckedHornProof {
    let hypotheses = vec![Judgment::Eq(e("m1"), e("0"))];
    let start = e("(m1 p)* m0");
    let zero_p = e("0 p");
    let chain = EqChain::with_hyps(&start, &hypotheses)
        .hyp_at(&[0, 0, 0], 0)
        .expect("dead-loop: m1 → 0")
        // (0p)* m0 = (1 + 0p (0p)*) m0                     (fixed-point)
        .rw_rev_at(&[0], theorems::fixed_point_right(&zero_p))
        .expect("dead-loop: unfold star")
        .semiring(&e("m0"))
        .expect("dead-loop: semiring collapse");
    let conclusion = chain.judgment();
    CheckedHornProof {
        hypotheses,
        conclusion,
        proof: chain.into_proof(),
    }
}

/// **Loop peeling** (unconditional — no hypotheses): one iteration is
/// split off the front of a loop,
///
/// ```text
/// ⊢  (m1 p)* m0 = m0 + m1 (p ((m1 p)* m0))
/// ```
///
/// which is the fixed-point law read as a program transformation:
/// `while M=1 do P done ≡ if M=1 then (P; while M=1 do P done)`.
pub fn loop_peeling_proof() -> CheckedHornProof {
    let body = e("m1 p");
    let start = e("(m1 p)* m0");
    let chain = EqChain::new(&start)
        .rw_rev_at(&[0], theorems::fixed_point_right(&body))
        .expect("peel: unfold star")
        .semiring(&e("m0 + m1 (p ((m1 p)* m0))"))
        .expect("peel: regroup");
    let conclusion = chain.judgment();
    CheckedHornProof {
        hypotheses: Vec::new(),
        conclusion,
        proof: chain.into_proof(),
    }
}

/// **Double-reset elimination**: resetting a register twice in a row is
/// one reset (`⟦q:=|0⟩⟧` is idempotent):
///
/// ```text
/// r r = r  ⊢  r (r p) = r p
/// ```
pub fn double_reset_proof() -> CheckedHornProof {
    let hypotheses = vec![Judgment::Eq(e("r r"), e("r"))];
    let start = e("r (r p)");
    let chain = EqChain::with_hyps(&start, &hypotheses)
        .semiring(&e("(r r) p"))
        .expect("double-reset: reassociate")
        .hyp_at(&[0], 0)
        .expect("double-reset: r r → r");
    let conclusion = chain.judgment();
    CheckedHornProof {
        hypotheses,
        conclusion,
        proof: chain.into_proof(),
    }
}

/// **Double-measure elimination** for projective measurements: observing
/// the same projective outcome twice collapses to once,
///
/// ```text
/// m0 m0 = m0  ⊢  m0 (m0 p) = m0 p
/// ```
///
/// the quantum analogue of KAT's `b·b = b` for tests — but valid only
/// under the projectivity hypothesis, never as an axiom (general POVM
/// branches are not idempotent).
pub fn double_measure_proof() -> CheckedHornProof {
    let hypotheses = vec![Judgment::Eq(e("m0 m0"), e("m0"))];
    let start = e("m0 (m0 p)");
    let chain = EqChain::with_hyps(&start, &hypotheses)
        .semiring(&e("(m0 m0) p"))
        .expect("double-measure: reassociate")
        .hyp_at(&[0], 0)
        .expect("double-measure: m0 m0 → m0");
    let conclusion = chain.judgment();
    CheckedHornProof {
        hypotheses,
        conclusion,
        proof: chain.into_proof(),
    }
}

/// **Abort sinking**: code after an abort is dead,
///
/// ```text
/// ⊢  0 p = 0
/// ```
///
/// (pure semiring — `abort` encodes as `0`, Def. 4.4).
pub fn abort_sink_proof() -> CheckedHornProof {
    let start = e("0 p");
    let chain = EqChain::new(&start)
        .semiring(&e("0"))
        .expect("abort-sink: annihilation");
    let conclusion = chain.judgment();
    CheckedHornProof {
        hypotheses: Vec::new(),
        conclusion,
        proof: chain.into_proof(),
    }
}

/// **Uncompute erasure** via the unitary-group embedding (the paper's
/// "Future Directions" suggestion, systematized in
/// [`nka_core::group::UnitaryGroup`]): a circuit immediately followed by
/// its uncomputation cancels,
///
/// ```text
/// u1 u1⁻¹ = 1 ∧ u1⁻¹ u1 = 1 ∧ u2 u2⁻¹ = 1 ∧ u2⁻¹ u2 = 1
///   ⊢  (u1 u2) (u2⁻¹ u1⁻¹) = 1
/// ```
///
/// with the proof generated structurally (linear in the circuit length)
/// rather than transcribed by hand.
pub fn uncompute_erasure_proof() -> CheckedHornProof {
    let mut group = nka_core::UnitaryGroup::new();
    let (u1, _) = group.declare("u1", "u1_inv");
    let (u2, _) = group.declare("u2", "u2_inv");
    let word = [u1, u2];
    let proof = group
        .cancellation_proof(&word)
        .expect("letters are declared");
    let hypotheses = group.hypotheses();
    let conclusion = proof
        .check(&hypotheses)
        .expect("generated cancellation proof checks");
    CheckedHornProof {
        hypotheses,
        conclusion,
        proof,
    }
}

/// A catalog entry: rule name, its checked Horn proof, a semantic
/// witness builder (a pair of concrete programs that must be equal, with
/// the hypotheses holding on their superoperators), and the shared
/// metadata record the static analyzer cites in its certificates.
#[derive(Debug)]
pub struct RuleEntry {
    /// Short rule name (matches the module-level table and
    /// [`nka_qprog::analysis::RULE_METADATA`]).
    pub name: &'static str,
    /// The checked algebraic certificate.
    pub proof: CheckedHornProof,
    /// Builds the concrete before/after program pair.
    pub witness: fn() -> (Program, Program),
    /// The analyzer's metadata record for this rule (LHS/RHS shapes,
    /// Horn hypotheses, paper citation) — one source of truth shared
    /// with `nka analyze` findings and the `nka_qprog::optimize`
    /// rewriter's step traces.
    pub meta: &'static nka_qprog::analysis::RuleMeta,
}

/// Builds one catalog entry, resolving the analyzer metadata by name.
/// Panics (at test time) if the analyzer's `RULE_METADATA` table and
/// this catalog ever drift apart.
fn entry(
    name: &'static str,
    proof: CheckedHornProof,
    witness: fn() -> (Program, Program),
) -> RuleEntry {
    let meta = nka_qprog::analysis::rule_meta(name)
        .unwrap_or_else(|| panic!("rule {name:?} is missing from analysis::RULE_METADATA"));
    RuleEntry {
        name,
        proof,
        witness,
        meta,
    }
}

/// The full rule catalog, in the module-level table's order (which is
/// also [`nka_qprog::analysis::RULE_METADATA`]'s order).
pub fn catalog() -> Vec<RuleEntry> {
    vec![
        entry("dead-branch", dead_branch_proof(), dead_branch_programs),
        entry(
            "branch-fusion",
            branch_fusion_proof(),
            branch_fusion_programs,
        ),
        entry("gate-fusion", gate_fusion_proof(), gate_fusion_programs),
        entry("dead-loop", dead_loop_proof(), dead_loop_programs),
        entry("loop-peeling", loop_peeling_proof(), loop_peeling_programs),
        entry("double-reset", double_reset_proof(), double_reset_programs),
        entry(
            "double-measure",
            double_measure_proof(),
            double_measure_programs,
        ),
        entry("abort-sink", abort_sink_proof(), abort_sink_programs),
        entry(
            "uncompute",
            uncompute_erasure_proof(),
            uncompute_erasure_programs,
        ),
    ]
}

/// One qubit `q` plus one ancilla `a`; the shared layout for witnesses.
fn two_qubit_space() -> (
    RegisterSpace,
    qsim_quantum::registers::RegisterId,
    qsim_quantum::registers::RegisterId,
) {
    let mut space = RegisterSpace::new();
    let q = space.add_register("q", 2);
    let a = space.add_register("a", 2);
    (space, q, a)
}

/// A projective measurement of `q` in the computational basis, embedded
/// in the two-qubit space: outcome 0 = `q = 0`, outcome 1 = `q = 1`.
fn q_measurement() -> Measurement {
    let (space, q, _) = two_qubit_space();
    let p0 = space.embed(&states::basis_density(2, 0), &[q]);
    let p1 = &CMatrix::identity(space.dim()) - &p0;
    Measurement::new(vec![p0, p1])
}

/// Dead branch: prepare nothing special, but measure with a *zero*
/// second operator (a sub-normalized instrument whose outcome-1 arm is
/// unreachable). `case M → {H on a | X on a} end` vs `M₀; H on a`.
fn dead_branch_programs() -> (Program, Program) {
    let (space, _, a) = two_qubit_space();
    let dim = space.dim();
    // Outcome 0: identity (always fires); outcome 1: zero operator.
    let meas = Measurement::new(vec![CMatrix::identity(dim), CMatrix::zeros(dim, dim)]);
    let h_a = Program::unitary("hA", &space.embed(&gates::hadamard(), &[a]));
    let x_a = Program::unitary("xA", &space.embed(&gates::pauli_x(), &[a]));
    let before = Program::case(["mDB0", "mDB1"], &meas, vec![h_a.clone(), x_a]);
    let after = Program::elementary("mDB0_only", meas.branch(0)).then(&h_a);
    (before, after)
}

/// Branch fusion: both branches of a `q`-measurement run `H` on `a`.
/// After: measure (both branches skip), then run `H` on `a` once.
fn branch_fusion_programs() -> (Program, Program) {
    let (space, _, a) = two_qubit_space();
    let meas = q_measurement();
    let h_a = Program::unitary("hA", &space.embed(&gates::hadamard(), &[a]));
    let before = Program::case(["mQ0", "mQ1"], &meas, vec![h_a.clone(), h_a.clone()]);
    let dephase = Program::case(
        ["mQ0", "mQ1"],
        &meas,
        vec![Program::skip(space.dim()), Program::skip(space.dim())],
    );
    let after = dephase.then(&h_a);
    (before, after)
}

/// Gate fusion: `while M[q]=1 do (Rz(0.4); Rz(0.3); H on q) done` vs the
/// fused `Rz(0.7)`.
fn gate_fusion_programs() -> (Program, Program) {
    let (space, q, _) = two_qubit_space();
    let meas = q_measurement();
    let rz1 = space.embed(&gates::rz(0.4), &[q]);
    let rz2 = space.embed(&gates::rz(0.3), &[q]);
    let h = space.embed(&gates::hadamard(), &[q]);
    // The H keeps the loop almost-surely terminating.
    let body_split = Program::unitary("rz1", &rz1)
        .then(&Program::unitary("rz2", &rz2))
        .then(&Program::unitary("hQ", &h));
    let fused = &rz2 * &rz1;
    let body_fused = Program::unitary("rz12", &fused).then(&Program::unitary("hQ", &h));
    let before = Program::while_loop(["mQ0", "mQ1"], &meas, body_split);
    let after = Program::while_loop(["mQ0", "mQ1"], &meas, body_fused);
    (before, after)
}

/// Dead loop: the continue operator is zero, so the loop is just its
/// exit measurement.
fn dead_loop_programs() -> (Program, Program) {
    let (space, _, a) = two_qubit_space();
    let dim = space.dim();
    let meas = Measurement::new(vec![CMatrix::identity(dim), CMatrix::zeros(dim, dim)]);
    let h_a = Program::unitary("hA", &space.embed(&gates::hadamard(), &[a]));
    let before = Program::while_loop(["mDL0", "mDL1"], &meas, h_a);
    let after = Program::elementary("mDL0_only", meas.branch(0));
    (before, after)
}

/// Loop peeling: `while M[q]=1 do X on q done` vs its peeled form
/// `if M[q]=1 then (X; while M[q]=1 do X done)`.
fn loop_peeling_programs() -> (Program, Program) {
    let (space, q, _) = two_qubit_space();
    let meas = q_measurement();
    let x_q = Program::unitary("xQ", &space.embed(&gates::pauli_x(), &[q]));
    let whole = Program::while_loop(["mQ0", "mQ1"], &meas, x_q.clone());
    let peeled = Program::case(
        ["mQ0", "mQ1"],
        &meas,
        vec![Program::skip(space.dim()), x_q.then(&whole)],
    );
    (whole, peeled)
}

/// Double reset of `a` before an `H` on `q`.
fn double_reset_programs() -> (Program, Program) {
    let (space, q, a) = two_qubit_space();
    let reset = {
        let kraus: Vec<CMatrix> = (0..2)
            .map(|j| {
                let ket0 = CMatrix::basis_ket(2, 0);
                let ketj = CMatrix::basis_ket(2, j);
                space.embed(&(&ket0 * &ketj.adjoint()), &[a])
            })
            .collect();
        Program::elementary(
            "resetA",
            Superoperator::from_kraus(space.dim(), space.dim(), kraus),
        )
    };
    let h_q = Program::unitary("hQ", &space.embed(&gates::hadamard(), &[q]));
    let before = reset.then(&reset.then(&h_q));
    let after = reset.then(&h_q);
    (before, after)
}

/// Double measurement of the projective outcome `q = 0`.
fn double_measure_programs() -> (Program, Program) {
    let (space, q, _) = two_qubit_space();
    let (space2, _, _) = two_qubit_space();
    debug_assert_eq!(space.dim(), space2.dim());
    let p0 = space.embed(&states::basis_density(2, 0), &[q]);
    let m0 = Superoperator::from_kraus(space.dim(), space.dim(), vec![p0]);
    let h_q = Program::unitary("hQ", &space.embed(&gates::hadamard(), &[q]));
    let m0_prog = Program::elementary("m0Q", m0);
    let before = m0_prog.then(&m0_prog.then(&h_q));
    let after = m0_prog.then(&h_q);
    (before, after)
}

/// Abort followed by anything is abort.
fn abort_sink_programs() -> (Program, Program) {
    let (space, q, _) = two_qubit_space();
    let h_q = Program::unitary("hQ", &space.embed(&gates::hadamard(), &[q]));
    let before = Program::abort(space.dim()).then(&h_q);
    let after = Program::abort(space.dim());
    (before, after)
}

/// Uncompute erasure: `Rz(0.4) on q; CNOT(q→a); CNOT(q→a)⁻¹; Rz(0.4)⁻¹`
/// versus `skip` — the hypotheses `UᵢUᵢ⁻¹ = Uᵢ⁻¹Uᵢ = I` hold because the
/// operators are genuinely unitary.
fn uncompute_erasure_programs() -> (Program, Program) {
    let (space, q, a) = two_qubit_space();
    let u1 = space.embed(&gates::rz(0.4), &[q]);
    let u2 = space.embed(&gates::cnot(), &[q, a]);
    let before = Program::unitary("u1", &u1)
        .then(&Program::unitary("u2", &u2))
        .then(&Program::unitary("u2_inv", &u2.adjoint()))
        .then(&Program::unitary("u1_inv", &u1.adjoint()));
    let after = Program::skip(space.dim());
    (before, after)
}

/// Runs the full Corollary-4.3 pipeline for one rule: re-check the
/// algebraic proof, then compare the witness programs' denotations.
pub fn validate_rule(entry: &RuleEntry, tol: f64) -> bool {
    entry.proof.assert_checked();
    let (before, after) = (entry.witness)();
    programs_equal_on_probes(&before, &after, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_proof_checks() {
        for entry in catalog() {
            entry.proof.assert_checked();
            assert!(entry.proof.proof_size() >= 1, "{} trivial", entry.name);
        }
    }

    #[test]
    fn every_rule_witness_is_semantically_valid() {
        for entry in catalog() {
            assert!(validate_rule(&entry, 1e-9), "rule {} failed", entry.name);
        }
    }

    #[test]
    fn catalog_and_analyzer_metadata_stay_in_lockstep() {
        // One source of truth: every catalog entry resolves its
        // analyzer metadata record, in the same order, and the proved
        // conclusion matches the advertised LHS = RHS shape.
        let entries = catalog();
        let metas: Vec<_> = nka_qprog::analysis::rule_metadata().collect();
        assert_eq!(entries.len(), metas.len());
        for (entry, meta) in entries.iter().zip(&metas) {
            assert_eq!(entry.name, meta.name);
            assert!(std::ptr::eq(entry.meta, *meta));
            assert_eq!(
                entry.proof.conclusion.to_string(),
                format!("{} = {}", meta.lhs, meta.rhs),
                "rule {}: proof conclusion drifted from its metadata",
                entry.name
            );
            assert!(!meta.citation.is_empty(), "rule {} uncited", entry.name);
            // Hypothesis-free in the metadata ⇔ hypothesis-free proof.
            assert_eq!(
                meta.hyps.is_empty(),
                entry.proof.hypotheses.is_empty(),
                "rule {}: hypothesis presence drifted",
                entry.name
            );
        }
    }

    #[test]
    fn optimizer_rule_universe_is_exactly_this_catalog() {
        // The `optimize` workload applies (a subset of) these rules;
        // its rule indexing must cover the catalog one-to-one, in
        // order, so `steps_by_rule` counters and `--stats` breakdowns
        // line up with the module-level table.
        let entries = catalog();
        assert_eq!(nka_qprog::optimize::RULE_COUNT, entries.len());
        for (i, entry) in entries.iter().enumerate() {
            assert_eq!(
                nka_qprog::optimize::rule_index(entry.name),
                Some(i),
                "rule {}: optimizer index drifted from the catalog order",
                entry.name
            );
        }
        assert_eq!(nka_qprog::optimize::rule_index("no-such-rule"), None);
    }

    #[test]
    fn dead_branch_conclusion_shape() {
        let horn = dead_branch_proof();
        assert_eq!(horn.conclusion.to_string(), "m0 p0 + m1 p1 = m0 p0");
    }

    #[test]
    fn branch_fusion_needs_its_hypothesis() {
        // Without m0 + m1 = m the equation is not an NKA theorem.
        let lhs: Expr = "m0 p + m1 p".parse().unwrap();
        let rhs: Expr = "m p".parse().unwrap();
        assert!(!nka_wfa::decide_eq(&lhs, &rhs).unwrap());
    }

    #[test]
    fn loop_peeling_is_hypothesis_free_and_decidable() {
        let horn = loop_peeling_proof();
        assert!(horn.hypotheses.is_empty());
        // Being hypothesis-free it must also pass the decision procedure.
        let lhs = horn.conclusion.lhs();
        let rhs = horn.conclusion.rhs();
        assert!(nka_wfa::decide_eq(lhs, rhs).unwrap());
    }

    #[test]
    fn abort_sink_is_hypothesis_free_and_decidable() {
        let horn = abort_sink_proof();
        assert!(horn.hypotheses.is_empty());
        assert!(nka_wfa::decide_eq(horn.conclusion.lhs(), horn.conclusion.rhs()).unwrap());
    }

    #[test]
    fn gate_fusion_witness_hypothesis_holds() {
        // u1 u2 = u12 on the concrete unitaries (premise discharge).
        let (space, q, _) = two_qubit_space();
        let rz1 = space.embed(&gates::rz(0.4), &[q]);
        let rz2 = space.embed(&gates::rz(0.3), &[q]);
        let fused = space.embed(&gates::rz(0.7), &[q]);
        assert!((&rz2 * &rz1).approx_eq(&fused, 1e-12));
    }

    #[test]
    fn double_measure_witness_hypothesis_holds() {
        let (space, q, _) = two_qubit_space();
        let p0 = space.embed(&states::basis_density(2, 0), &[q]);
        let m0 = Superoperator::from_kraus(space.dim(), space.dim(), vec![p0]);
        assert!(m0.compose(&m0).approx_eq(&m0, 1e-12));
    }

    #[test]
    fn uncompute_witness_hypotheses_hold() {
        // Each Uᵢ of the witness is unitary, so UᵢUᵢ† = Uᵢ†Uᵢ = I — the
        // group hypotheses discharge on the concrete operators.
        let (space, q, a) = two_qubit_space();
        let u1 = space.embed(&gates::rz(0.4), &[q]);
        let u2 = space.embed(&gates::cnot(), &[q, a]);
        for u in [u1, u2] {
            assert!(u.is_unitary(1e-12));
        }
    }

    #[test]
    fn uncompute_proof_scales_with_circuit_length() {
        // The generated certificate stays linear for longer circuits.
        let mut group = nka_core::UnitaryGroup::new();
        let letters: Vec<_> = (0..6)
            .map(|i| group.declare(&format!("w{i}"), &format!("w{i}_inv")).0)
            .collect();
        let proof = group.cancellation_proof(&letters).unwrap();
        proof.check(&group.hypotheses()).unwrap();
        assert!(proof.size() < 100, "size {}", proof.size());
    }
}
