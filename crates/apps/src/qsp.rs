//! Appendix B — optimizing quantum signal processing (QSP).
//!
//! QSP (Low & Chuang) simulates a Hamiltonian `H = Σ αₗ Hₗ`; Childs et
//! al. observed that the `S`/`S⁻¹` conjugation inside the QSP loop
//! cancels, removing two partial reflections per iteration. Figure 6
//! gives the programs `qsp` and `qsp'`; this module builds them **at the
//! gate level** (counter register `c` of dimension `n+1`, phase qubit
//! `p`, term register `r` of dimension `L`, system qubit `q`), proves the
//! optimization algebraically with the paper's hypotheses, and validates
//! `⟦qsp⟧ = ⟦qsp'⟧` on the simulator.
//!
//! One deviation from the paper's text is recorded here: Figure 6 prints
//! the loop measurement as `{M₁ = |0⟩⟨0|, M₀ = I − M₁}`, which with
//! `c := |n⟩` would exit immediately; we use the (clearly intended)
//! orientation `continue while c ≠ 0`, under which the loop performs `n`
//! iterations. The algebraic derivation is orientation-independent.

use crate::compiler_opt::{boundary_lemma, psd_probe_family, CheckedHornProof};
use nka_core::{EqChain, Judgment, Proof};
use nka_qprog::{EncoderSetting, Program};
use nka_syntax::Expr;
use qsim_linalg::{CMatrix, Complex};
use qsim_quantum::{gates, Measurement, RegisterSpace, Superoperator};

fn e(src: &str) -> Expr {
    src.parse().expect("static expression parses")
}

/// The algebraic verification of the QSP optimization (Appendix B):
///
/// ```text
/// φ s = s φ ∧ (φ⁻¹ d) s⁻¹ = s⁻¹ (φ⁻¹ d) ∧ m1 s = s m1 ∧ m0 s = s m0
///   ∧ r0 s = r0 ∧ s⁻¹ τ1 = τ1 ∧ s s⁻¹ = 1 ∧ s⁻¹ s = 1
/// ⊢ Enc(qsp) = Enc(qsp')
/// ```
pub fn qsp_optimization_proof() -> CheckedHornProof {
    let hypotheses = vec![
        Judgment::Eq(e("phi s"), e("s phi")), // 0
        Judgment::Eq(e("(phi_inv d) s_inv"), e("s_inv (phi_inv d)")), // 1
        Judgment::Eq(e("m1 s"), e("s m1")),   // 2
        Judgment::Eq(e("m0 s"), e("s m0")), // 3 (unused by the chain; listed by the paper via (5.2.1))
        Judgment::Eq(e("r0 s"), e("r0")),   // 4
        Judgment::Eq(e("s_inv tau1"), e("tau1")), // 5
        Judgment::Eq(e("s s_inv"), e("1")), // 6
        Judgment::Eq(e("s_inv s"), e("1")), // 7
    ];
    let start = e("c0 p0 r0 (m1 phi s wc s_inv phi_inv d)* m0 (tau0 0 + tau1 1)");
    let target = e("c0 p0 r0 (m1 phi wc phi_inv d)* m0 (tau0 0 + tau1 1)");

    let (s, s_inv) = (e("s"), e("s_inv"));
    let q = e("m1 phi wc phi_inv d"); // the optimized loop body
    let m0 = e("m0");
    // The paper lists the commutation as `m0 s = s m0`; the lemma wants
    // `u m = m u` with u = s, so flip the hypothesis.
    let lemma = boundary_lemma(
        &s,
        &s_inv,
        &q,
        &m0,
        Proof::Hyp(6),
        Proof::Hyp(7),
        Proof::Hyp(3).flip(),
        &hypotheses,
    );
    let lemma_lhs = s.mul(&q).mul(&s_inv).star().mul(&m0);
    let prefix = e("c0 p0 r0"); // ((c0 p0) r0)

    let chain = EqChain::with_hyps(&start, &hypotheses)
        // Collapse the abort branch (τ0·0 + τ1·1 = τ1) and expose (φ s).
        .semiring(&e(
            "c0 p0 r0 (m1 ((phi s) (wc (s_inv (phi_inv d)))))* m0 tau1",
        ))
        .expect("qsp collapse abort")
        // φ s → s φ.
        .rw(Proof::Hyp(0))
        .expect("qsp commute phi s")
        // s⁻¹ (φ⁻¹ d) → (φ⁻¹ d) s⁻¹: push s⁻¹ to the loop boundary.
        .rw_rev(Proof::Hyp(1))
        .expect("qsp move s_inv right")
        // Expose m1 s and pull s to the front of the body.
        .semiring(&e(
            "c0 p0 r0 ((m1 s) (phi (wc ((phi_inv d) s_inv))))* m0 tau1",
        ))
        .expect("qsp expose m1 s")
        .rw(Proof::Hyp(2))
        .expect("qsp commute m1 s")
        // Shape the star body as (s·q)·s⁻¹ and apply the boundary lemma.
        .semiring(&prefix.mul(&lemma_lhs).mul(&e("tau1")))
        .expect("qsp lemma shape")
        .rw_at(&[0, 1], lemma)
        .expect("qsp boundary lemma")
        // Absorb s into r0 and s⁻¹ into τ1.
        .semiring(&e(
            "c0 p0 ((r0 s) ((m1 phi wc phi_inv d)* (m0 (s_inv tau1))))",
        ))
        .expect("qsp expose absorptions")
        .rw(Proof::Hyp(4))
        .expect("qsp absorb r0 s")
        .rw(Proof::Hyp(5))
        .expect("qsp absorb s_inv tau1")
        // Reintroduce the abort branch.
        .semiring(&target)
        .expect("qsp final shape");

    CheckedHornProof {
        hypotheses,
        conclusion: Judgment::Eq(start, target),
        proof: chain.into_proof(),
    }
}

/// A concrete QSP instance: dimensions and all component unitaries.
#[derive(Debug)]
pub struct QspInstance {
    space: RegisterSpace,
    /// Total dimension `(n+1)·2·L·2`.
    pub dim: usize,
    init_c: Superoperator,
    init_p: Superoperator,
    init_r: Superoperator,
    phi: CMatrix,
    s: CMatrix,
    cw: CMatrix,
    dec: CMatrix,
    loop_meas: Measurement,
    final_meas: Measurement,
}

impl QspInstance {
    /// Builds a QSP instance with counter size `n` (the loop runs `n`
    /// times) and `L` Hamiltonian terms (`Hₗ` alternates Pauli X/Z with
    /// weights `αₗ = l + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `l == 0`.
    pub fn new(n: usize, l: usize) -> QspInstance {
        assert!(n > 0 && l > 0);
        let mut space = RegisterSpace::new();
        let c = space.add_register("c", n + 1);
        let p = space.add_register("p", 2);
        let r = space.add_register("r", l);
        let q = space.add_register("q", 2);
        let dim = space.dim();

        // |G⟩ = (1/√Σα) Σ √αₗ |l⟩.
        let alphas: Vec<f64> = (0..l).map(|i| (i + 1) as f64).collect();
        let total: f64 = alphas.iter().sum();
        let g: Vec<Complex> = alphas
            .iter()
            .map(|&a| Complex::from((a / total).sqrt()))
            .collect();
        let g_proj = CMatrix::outer(&g, &g);

        // Initializations.
        let init_reg = |space: &RegisterSpace, reg, target_vec: &[Complex]| {
            let d = target_vec.len();
            let kraus: Vec<CMatrix> = (0..d)
                .map(|j| {
                    let mut ketj = vec![Complex::ZERO; d];
                    ketj[j] = Complex::ONE;
                    space.embed(&CMatrix::outer(target_vec, &ketj), &[reg])
                })
                .collect();
            Superoperator::from_kraus(space.dim(), space.dim(), kraus)
        };
        let mut ket_n = vec![Complex::ZERO; n + 1];
        ket_n[n] = Complex::ONE;
        let plus = vec![
            Complex::from(std::f64::consts::FRAC_1_SQRT_2),
            Complex::from(std::f64::consts::FRAC_1_SQRT_2),
        ];
        let init_c = init_reg(&space, c, &ket_n);
        let init_p = init_reg(&space, p, &plus);
        let init_r = init_reg(&space, r, &g);

        // Φ = Σ_j |j⟩⟨j| ⊗ RZ(φ_j) on (c, p).
        let mut phi_cp = CMatrix::zeros(2 * (n + 1), 2 * (n + 1));
        for j in 0..=n {
            let rz = gates::rz(0.3 + 0.4 * j as f64);
            for a in 0..2 {
                for b in 0..2 {
                    phi_cp[(j * 2 + a, j * 2 + b)] = rz[(a, b)];
                }
            }
        }
        let phi = space.embed(&phi_cp, &[c, p]);

        // S = (1−i)|G⟩⟨G| − I on r.
        let s_r = &g_proj.scale(Complex::new(1.0, -1.0)) - &CMatrix::identity(l);
        let s = space.embed(&s_r, &[r]);

        // W = −i((2|G⟩⟨G| − I) ⊗ I) · Σₗ |l⟩⟨l| ⊗ Hₗ on (r, q).
        let reflection = &g_proj.scale(Complex::from(2.0)) - &CMatrix::identity(l);
        let mut select = CMatrix::zeros(2 * l, 2 * l);
        for idx in 0..l {
            let h = if idx % 2 == 0 {
                gates::pauli_x()
            } else {
                gates::pauli_z()
            };
            for a in 0..2 {
                for b in 0..2 {
                    select[(idx * 2 + a, idx * 2 + b)] = h[(a, b)];
                }
            }
        }
        let w = (&reflection.kron(&CMatrix::identity(2)) * &select).scale(-Complex::I);
        // CW = |+⟩⟨+| ⊗ I + |−⟩⟨−| ⊗ W on (p, r, q), via the Hadamard
        // conjugation of the |0⟩/|1⟩-controlled W.
        let h2 = gates::hadamard().kron(&CMatrix::identity(2 * l));
        let cw_prq = &(&h2 * &gates::controlled(&w)) * &h2;
        let cw = space.embed(&cw_prq, &[p, r, q]);

        // Dec on c.
        let dec = space.embed(&gates::decrement(n + 1), &[c]);

        // Loop measurement: continue (outcome 1) while c ≠ 0.
        let proj_c0 = space.basis_projector(c, 0);
        let continue_proj = &CMatrix::identity(dim) - &proj_c0;
        let loop_meas = Measurement::new(vec![proj_c0, continue_proj]);

        // Final measurement on (p, r): M₁ = |+⟩⟨+| ⊗ |G⟩⟨G|.
        let plus_proj = CMatrix::outer(&plus, &plus);
        let m1_pr = plus_proj.kron(&g_proj);
        let m1 = space.embed(&m1_pr, &[p, r]);
        let m0 = &CMatrix::identity(dim) - &m1;
        let final_meas = Measurement::new(vec![m0, m1]);

        QspInstance {
            space,
            dim,
            init_c,
            init_p,
            init_r,
            phi,
            s,
            cw,
            dec,
            loop_meas,
            final_meas,
        }
    }

    /// The unoptimized program `qsp` of Figure 6.
    pub fn qsp(&self) -> Program {
        let body = Program::unitary("phi", &self.phi)
            .then(&Program::unitary("s", &self.s))
            .then(&Program::unitary("wc", &self.cw))
            .then(&Program::unitary("s_inv", &self.s.adjoint()))
            .then(&Program::unitary("phi_inv", &self.phi.adjoint()))
            .then(&Program::unitary("d", &self.dec));
        self.wrap(body)
    }

    /// The optimized program `qsp'` of Figure 6.
    pub fn qsp_optimized(&self) -> Program {
        let body = Program::unitary("phi", &self.phi)
            .then(&Program::unitary("wc", &self.cw))
            .then(&Program::unitary("phi_inv", &self.phi.adjoint()))
            .then(&Program::unitary("d", &self.dec));
        self.wrap(body)
    }

    fn wrap(&self, body: Program) -> Program {
        let init = Program::elementary("c0", self.init_c.clone())
            .then(&Program::elementary("p0", self.init_p.clone()))
            .then(&Program::elementary("r0", self.init_r.clone()));
        let w = Program::while_loop(["m0", "m1"], &self.loop_meas, body);
        let post = Program::if_then_else(
            ["tau0", "tau1"],
            &self.final_meas,
            Program::skip(self.dim),
            Program::abort(self.dim),
        );
        init.then(&w).then(&post)
    }

    /// Checks every algebraic hypothesis of [`qsp_optimization_proof`]
    /// against the concrete superoperators (Corollary 4.3's
    /// premise-discharge step).
    pub fn hypotheses_hold(&self, tol: f64) -> bool {
        let sup = Superoperator::from_unitary;
        let s = sup(&self.s);
        let s_inv = sup(&self.s.adjoint());
        let phi = sup(&self.phi);
        let phi_inv = sup(&self.phi.adjoint());
        let d = sup(&self.dec);
        let m0 = self.loop_meas.branch(0);
        let m1 = self.loop_meas.branch(1);
        let tau1 = self.final_meas.branch(1);
        let id = Superoperator::identity(self.dim);

        phi.compose(&s).approx_eq(&s.compose(&phi), tol)
            && phi_inv
                .compose(&d)
                .compose(&s_inv)
                .approx_eq(&s_inv.compose(&phi_inv).compose(&d), tol)
            && m1.compose(&s).approx_eq(&s.compose(&m1), tol)
            && m0.compose(&s).approx_eq(&s.compose(&m0), tol)
            && self.init_r.compose(&s).approx_eq(&self.init_r, tol)
            && s_inv.compose(&tau1).approx_eq(&tau1, tol)
            && s.compose(&s_inv).approx_eq(&id, tol)
            && s_inv.compose(&s).approx_eq(&id, tol)
    }

    /// Semantic check `⟦qsp⟧ = ⟦qsp'⟧` on the PSD probe family.
    pub fn programs_equal(&self, tol: f64) -> bool {
        let a = self.qsp();
        let b = self.qsp_optimized();
        psd_probe_family(self.dim)
            .iter()
            .all(|rho| a.run(rho).approx_eq(&b.run(rho), tol))
    }

    /// Encodes both programs, confirming the shapes used by the proof.
    ///
    /// # Errors
    ///
    /// Propagates encoder-injectivity errors (cannot occur for the fixed
    /// naming used here).
    pub fn encodings(&self) -> Result<(Expr, Expr), nka_qprog::EncodeError> {
        let mut setting = EncoderSetting::new(self.dim);
        let qsp = setting.encode(&self.qsp())?;
        let qsp_opt = setting.encode(&self.qsp_optimized())?;
        Ok((qsp, qsp_opt))
    }

    /// The register space (for inspection).
    pub fn space(&self) -> &RegisterSpace {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qsp_proof_checks() {
        let horn = qsp_optimization_proof();
        horn.assert_checked();
    }

    #[test]
    fn components_are_unitary() {
        let inst = QspInstance::new(2, 2);
        assert!(inst.phi.is_unitary(1e-9));
        assert!(inst.s.is_unitary(1e-9));
        assert!(inst.cw.is_unitary(1e-9));
        assert!(inst.dec.is_unitary(1e-9));
        assert_eq!(inst.dim, 3 * 2 * 2 * 2);
    }

    #[test]
    fn hypotheses_hold_on_the_gate_model() {
        let inst = QspInstance::new(2, 2);
        assert!(inst.hypotheses_hold(1e-8));
    }

    #[test]
    fn encodings_match_the_proof_statement_modulo_semiring() {
        use nka_core::semiring_nf::semiring_equal;
        let inst = QspInstance::new(2, 2);
        let (qsp, qsp_opt) = inst.encodings().unwrap();
        let horn = qsp_optimization_proof();
        // Enc(qsp) and the proof's LHS/RHS differ only by associativity,
        // i.e. they are equal in the semiring fragment (one BySemiring
        // step bridges them, so Theorem 1.1 applies to the encodings).
        assert!(semiring_equal(&qsp, horn.conclusion.lhs()));
        assert!(semiring_equal(&qsp_opt, horn.conclusion.rhs()));
    }

    #[test]
    fn optimization_is_semantically_sound() {
        let inst = QspInstance::new(2, 2);
        assert!(inst.programs_equal(1e-7));
    }
}
