//! Appendix C.5 — the completeness construction of Theorem 4.2.
//!
//! To prove completeness of NKA for the quantum interpretation, the paper
//! builds, for each word length bound `n`, the interpretation over
//! `H = span{|s⟩ : s ∈ Σ*, |s| ≤ n}` with
//!
//! ```text
//! eval(a)(ρ) = Σ_s K_{a,s} ρ K_{a,s}†,   K_{a,s} = (1/√#a)·|sa⟩⟨s|
//! ```
//!
//! and shows (eq. C.5.1) that applying `Qint(e)` to `[r·|s⟩⟨s|]` produces
//! `Σ_{st ∈ S} Σ_{k=1}^{{{e}}[t]} [r/#t · |st⟩⟨st|]` — i.e. the quantum
//! path model *computes the formal power series* `{{e}}`, coefficients
//! appearing as accumulated weight and `∞`-coefficients as divergence
//! directions. This module implements the construction and
//! [`CompletenessModel::check_c51_on_epsilon`] validates eq. C.5.1 at `s = ε, r = 1`
//! against the truncated-series oracle — tying together `nka-series`,
//! `nka-wfa`'s ground truth, and `nka-qpath`.

use nka_qpath::{ExtPosOp, Interpretation};
use nka_semiring::ExtNat;
use nka_series::{all_words, eval, Series};
use nka_syntax::{Expr, Symbol, Word};
use qsim_linalg::{CMatrix, Complex, Subspace};
use qsim_quantum::Superoperator;
use std::collections::HashMap;

/// The C.5 interpretation for `alphabet` and maximum word length `n`.
///
/// The Hilbert space has one basis vector per word of length ≤ `n`
/// (dimension `Σ_k |Σ|^k`).
#[derive(Debug)]
pub struct CompletenessModel {
    alphabet: Vec<Symbol>,
    max_len: usize,
    words: Vec<Word>,
    index: HashMap<Word, usize>,
    interpretation: Interpretation,
}

impl CompletenessModel {
    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics if the alphabet is empty.
    pub fn new(alphabet: &[Symbol], max_len: usize) -> CompletenessModel {
        assert!(!alphabet.is_empty(), "alphabet must be non-empty");
        let words = all_words(alphabet, max_len);
        let dim = words.len();
        let index: HashMap<Word, usize> = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        // #a = |{s : s·a ∈ S}| = number of words of length ≤ n−1 — the
        // same for every symbol.
        let shorter = all_words(alphabet, max_len.saturating_sub(1)).len();
        let norm = 1.0 / (shorter as f64).sqrt();

        let mut interpretation = Interpretation::new(dim);
        for &a in alphabet {
            let mut kraus = Vec::new();
            for (s_idx, s) in words.iter().enumerate() {
                if s.len() + 1 > max_len {
                    continue;
                }
                let mut sa = s.clone();
                sa.push(a);
                let sa_idx = index[&sa];
                let mut k = CMatrix::zeros(dim, dim);
                k[(sa_idx, s_idx)] = Complex::from(norm);
                kraus.push(k);
            }
            interpretation.assign(a, Superoperator::from_kraus(dim, dim, kraus));
        }
        CompletenessModel {
            alphabet: alphabet.to_vec(),
            max_len,
            words,
            index,
            interpretation,
        }
    }

    /// The Hilbert-space dimension (number of words ≤ `max_len`).
    pub fn dim(&self) -> usize {
        self.words.len()
    }

    /// The interpretation `int = (H, eval)`.
    pub fn interpretation(&self) -> &Interpretation {
        &self.interpretation
    }

    /// `#t` — the normalization factor of a word (`Π #aᵢ`).
    pub fn sharp(&self, t: &Word) -> f64 {
        let shorter = all_words(&self.alphabet, self.max_len - 1).len();
        (shorter as f64).powi(t.len() as i32)
    }

    /// Applies `Qint(e)` to `[|ε⟩⟨ε|]` and returns the canonical result.
    pub fn apply_to_epsilon(&self, e: &Expr) -> ExtPosOp {
        let eps_idx = self.index[&Word::epsilon()];
        let rho = qsim_quantum::states::basis_density(self.dim(), eps_idx);
        self.interpretation
            .action(e)
            .apply(&ExtPosOp::from_operator(&rho))
    }

    /// The canonical form eq. C.5.1 *predicts* for `s = ε, r = 1`:
    /// finite part `Σ_{t: {{e}}[t] finite} {{e}}[t]/#t · |t⟩⟨t|`,
    /// divergence subspace `span{|t⟩ : {{e}}[t] = ∞}`.
    pub fn predicted_from_series(&self, series: &Series) -> ExtPosOp {
        let dim = self.dim();
        let mut fin = CMatrix::zeros(dim, dim);
        let mut div_vectors = Vec::new();
        for (t, &t_idx) in &self.index {
            let coeff = series.coeff(t);
            match coeff {
                ExtNat::Fin(k) => {
                    fin[(t_idx, t_idx)] = Complex::from(k as f64 / self.sharp(t));
                }
                ExtNat::Inf => {
                    let mut v = vec![Complex::ZERO; dim];
                    v[t_idx] = Complex::ONE;
                    div_vectors.push(v);
                }
            }
        }
        let div = Subspace::from_spanning(dim, &div_vectors);
        ExtPosOp::from_parts(div, &fin)
    }

    /// Validates eq. C.5.1 at `s = ε, r = 1` for `e`: the path-model
    /// result must match the truncated-series prediction.
    pub fn check_c51_on_epsilon(&self, e: &Expr) -> bool {
        let actual = self.apply_to_epsilon(e);
        let series = eval(e, &self.alphabet, self.max_len);
        let predicted = self.predicted_from_series(&series);
        actual.approx_eq(&predicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CompletenessModel {
        let alphabet = vec![Symbol::intern("a"), Symbol::intern("b")];
        CompletenessModel::new(&alphabet, 2)
    }

    fn e(src: &str) -> Expr {
        src.parse().unwrap()
    }

    #[test]
    fn dimensions() {
        let m = model();
        assert_eq!(m.dim(), 1 + 2 + 4);
    }

    #[test]
    fn atoms_step_one_letter() {
        let m = model();
        assert!(m.check_c51_on_epsilon(&e("a")));
        assert!(m.check_c51_on_epsilon(&e("b")));
        assert!(m.check_c51_on_epsilon(&e("a b")));
    }

    #[test]
    fn constants() {
        let m = model();
        assert!(m.check_c51_on_epsilon(&e("0")));
        assert!(m.check_c51_on_epsilon(&e("1")));
        assert!(m.check_c51_on_epsilon(&e("1 + 1")));
    }

    #[test]
    fn sums_accumulate_multiplicity() {
        let m = model();
        assert!(m.check_c51_on_epsilon(&e("a + a")));
        assert!(m.check_c51_on_epsilon(&e("a + b")));
        assert!(m.check_c51_on_epsilon(&e("a b + a b + b a")));
    }

    #[test]
    fn stars_produce_series_tails() {
        let m = model();
        assert!(m.check_c51_on_epsilon(&e("a*")));
        assert!(m.check_c51_on_epsilon(&e("(a + b)*")));
        assert!(m.check_c51_on_epsilon(&e("a* a*")));
    }

    #[test]
    fn infinite_coefficients_become_divergence() {
        let m = model();
        // {{1*}}[ε] = ∞: divergence exactly along |ε⟩.
        let out = m.apply_to_epsilon(&e("1*"));
        assert_eq!(out.divergence().dim(), 1);
        assert!(m.check_c51_on_epsilon(&e("1*")));
        assert!(m.check_c51_on_epsilon(&e("(1 + a)*")));
        assert!(m.check_c51_on_epsilon(&e("1* a")));
    }

    #[test]
    fn random_expressions_obey_c51() {
        use nka_syntax::{random_expr, ExprGenConfig};
        let m = model();
        let config =
            ExprGenConfig::new(vec![Symbol::intern("a"), Symbol::intern("b")]).with_target_size(7);
        let mut seed = 0xC5_15EED;
        for _ in 0..25 {
            let expr = random_expr(&config, &mut seed);
            assert!(m.check_c51_on_epsilon(&expr), "C.5.1 failed for {expr}");
        }
    }
}
