//! Quantum path actions (Definitions 3.4–3.5).

use crate::ext_pos::ExtPosOp;
use qsim_linalg::{CMatrix, Subspace};
use qsim_quantum::Superoperator;
use std::rc::Rc;

/// Evaluation policy for [`Action::star`] (eq. 3.3.5): the countable sum
/// `A* = Σₙ Aⁿ` is computed as a limit of partial sums.
///
/// Divergence is detected by a *stall criterion*: the mass of the `n`-th
/// term behaves like `|λ|ⁿ·poly(n)` for eigenvalues `λ` of the Liouville
/// representation of the (lifted fragments of the) action, so the series
/// converges iff the per-window mass ratio eventually drops below 1. When
/// the ratio stays above `stall_ratio` across `stall_window` iterations
/// (after a `warmup`), the supports of the recent terms are declared
/// divergent directions, compressed away, and iteration continues on the
/// remainder.
///
/// The criterion is exact for the behaviours NKA interpretations produce;
/// the documented caveat is a loop contracting *slower* than
/// `stall_ratio^(1/stall_window)` per step, which would be flagged
/// divergent — such loops would also need more than `max_iterations` to
/// converge numerically, so the default parameters are self-consistent.
#[derive(Debug, Clone)]
pub struct StarPolicy {
    /// Tail trace below which the partial sums are declared converged.
    pub tolerance: f64,
    /// Hard iteration bound.
    pub max_iterations: usize,
    /// Window length (iterations) for the stall comparison.
    pub stall_window: usize,
    /// Mass-ratio threshold across a window above which the series is
    /// declared stalled (divergent).
    pub stall_ratio: f64,
    /// Iterations before stall detection starts (transient damping).
    pub warmup: usize,
    /// Support eigenvalue threshold when extracting divergent directions.
    pub support_tol: f64,
}

impl Default for StarPolicy {
    fn default() -> Self {
        StarPolicy {
            tolerance: 1e-10,
            max_iterations: 4096,
            stall_window: 16,
            stall_ratio: 0.99,
            warmup: 32,
            support_tol: 1e-8,
        }
    }
}

#[derive(Debug)]
enum Node {
    Zero,
    Id,
    Lift(Superoperator),
    Sum(Action, Action),
    /// `Seq(a, b)` is the paper's `a ; b` — apply `a` first.
    Seq(Action, Action),
    Star(Action),
}

/// A quantum path action: an element of `P(H)` presented as a term over
/// lifted superoperators, evaluated lazily on canonical forms.
///
/// Cloning is cheap (terms are reference-counted).
///
/// # Examples
///
/// ```
/// use nka_qpath::{Action, ExtPosOp};
/// use qsim_quantum::{gates, states, Superoperator};
///
/// let h = Action::lift(Superoperator::from_unitary(&gates::hadamard()));
/// let rho = ExtPosOp::from_operator(&states::basis_density(2, 0));
/// let out = h.seq(&h).apply(&rho); // H;H = identity
/// assert!(out.approx_eq(&rho));
/// ```
#[derive(Debug, Clone)]
pub struct Action {
    dim: usize,
    node: Rc<Node>,
}

impl Action {
    /// The zero action `O_H`.
    pub fn zero(dim: usize) -> Action {
        Action {
            dim,
            node: Rc::new(Node::Zero),
        }
    }

    /// The identity action `I_H`.
    pub fn identity(dim: usize) -> Action {
        Action {
            dim,
            node: Rc::new(Node::Id),
        }
    }

    /// Path lifting `⟨E⟩↑` (Definition 3.7).
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an endomorphism (`dim_in == dim_out`).
    pub fn lift(e: Superoperator) -> Action {
        assert_eq!(
            e.dim_in(),
            e.dim_out(),
            "path lifting needs an endo-superoperator"
        );
        Action {
            dim: e.dim_in(),
            node: Rc::new(Node::Lift(e)),
        }
    }

    /// Pointwise sum (eq. 3.3.3 restricted to two operands).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn plus(&self, other: &Action) -> Action {
        assert_eq!(self.dim, other.dim);
        Action {
            dim: self.dim,
            node: Rc::new(Node::Sum(self.clone(), other.clone())),
        }
    }

    /// Sequential composition `self ; other` (eq. 3.3.4): `self` first.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn seq(&self, other: &Action) -> Action {
        assert_eq!(self.dim, other.dim);
        Action {
            dim: self.dim,
            node: Rc::new(Node::Seq(self.clone(), other.clone())),
        }
    }

    /// The reversed composition `self ⋄ other = other ; self`
    /// (Definition 3.5), used by the dual interpretation of Section 7.
    pub fn diamond(&self, other: &Action) -> Action {
        other.seq(self)
    }

    /// Kleene star `A* = Σₙ Aⁿ` (eq. 3.3.5).
    pub fn star(&self) -> Action {
        Action {
            dim: self.dim,
            node: Rc::new(Node::Star(self.clone())),
        }
    }

    /// Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies the action to a canonical form with the default
    /// [`StarPolicy`].
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply(&self, x: &ExtPosOp) -> ExtPosOp {
        self.apply_with(x, &StarPolicy::default())
    }

    /// Applies the action under an explicit star policy.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply_with(&self, x: &ExtPosOp, policy: &StarPolicy) -> ExtPosOp {
        assert_eq!(x.dim(), self.dim, "dimension mismatch");
        match &*self.node {
            Node::Zero => ExtPosOp::zero(self.dim),
            Node::Id => x.clone(),
            Node::Lift(e) => apply_lifted(e, x),
            Node::Sum(a, b) => a.apply_with(x, policy).add(&b.apply_with(x, policy)),
            Node::Seq(a, b) => b.apply_with(&a.apply_with(x, policy), policy),
            Node::Star(a) => apply_star(a, x, policy),
        }
    }
}

/// `⟨E⟩↑ (V, A) = (supp E(P_V), P_{W'} E(A) P_{W'})`.
///
/// Derivation: `ψ` keeps finite weight iff `supp E†(ψψ*) ⊆ W`, which for
/// PSD arguments is `⟨ψ|E(P_V)|ψ⟩ = 0`; and for `B` supported on `W`,
/// `tr(ρᵢ B) = tr(P_W ρᵢ P_W B)`, so the compressed image of the finite
/// part is exactly `E(A)` compressed (DESIGN.md §3).
fn apply_lifted(e: &Superoperator, x: &ExtPosOp) -> ExtPosOp {
    let pv = x.divergence().projector();
    let image_div = e.apply(&pv);
    let div = Subspace::support_of_psd(&image_div, 1e-9);
    let fin = e.apply(x.finite_part());
    ExtPosOp::from_parts(div, &fin)
}

fn apply_star(a: &Action, x: &ExtPosOp, policy: &StarPolicy) -> ExtPosOp {
    // Σₙ Aⁿ(x), starting with the n = 0 term.
    let mut total = x.clone();
    let mut current = x.clone();
    let mut quiet_steps = 0usize;
    // Projected masses and finite parts of recent terms, for the stall
    // criterion (see StarPolicy docs).
    let mut mass_history: Vec<f64> = Vec::new();
    let mut recent_terms: Vec<CMatrix> = Vec::new();

    for iter in 1..=policy.max_iterations {
        current = a.apply_with(&current, policy);
        // Judge convergence on mass that is genuinely new: compress the
        // incoming term against the already-divergent subspace.
        let projected = ExtPosOp::from_parts(total.divergence().clone(), current.finite_part());
        let mass = projected.finite_trace();
        mass_history.push(mass);
        recent_terms.push(projected.finite_part().clone());
        if recent_terms.len() > policy.stall_window {
            recent_terms.remove(0);
        }
        total = total.add(&current);

        let new_divergence = !current
            .divergence()
            .is_subspace_of(total.divergence(), 1e-7);
        if mass <= policy.tolerance && !new_divergence {
            quiet_steps += 1;
            if quiet_steps >= 2 {
                break;
            }
            continue;
        }
        quiet_steps = 0;

        let stalled = iter >= policy.warmup
            && mass_history.len() > policy.stall_window
            && mass > policy.tolerance
            && mass
                >= policy.stall_ratio * mass_history[mass_history.len() - 1 - policy.stall_window];
        if stalled {
            // The recurring terms' supports span the divergent directions.
            let mut div = total.divergence().clone();
            for term in &recent_terms {
                let supp = Subspace::support_of_psd(term, policy.support_tol * mass.max(1.0));
                div = div.join(&supp);
            }
            total = ExtPosOp::from_parts(div, total.finite_part());
            mass_history.clear();
            recent_terms.clear();
        }
    }
    total
}

/// A PSD probing family spanning Hermitian matrix space, plus one purely
/// divergent probe per basis direction. Two actions built from lifted
/// superoperators by `+`, `;`, `*` that agree on all probes agree as maps
/// (their finite behaviour is determined by linearity on a spanning PSD
/// set, their divergence behaviour by monotonicity over the probe cone).
pub fn probe_family(dim: usize) -> Vec<ExtPosOp> {
    use qsim_linalg::Complex;
    let mut probes = Vec::new();
    let ket = |k: usize| {
        let mut v = vec![Complex::ZERO; dim];
        v[k] = Complex::ONE;
        v
    };
    for i in 0..dim {
        probes.push(ExtPosOp::from_operator(&CMatrix::outer(&ket(i), &ket(i))));
    }
    for i in 0..dim {
        for j in (i + 1)..dim {
            let mut plus = vec![Complex::ZERO; dim];
            plus[i] = Complex::ONE;
            plus[j] = Complex::ONE;
            probes.push(ExtPosOp::from_operator(
                &CMatrix::outer(&plus, &plus).scale(Complex::from(0.5)),
            ));
            let mut phase = vec![Complex::ZERO; dim];
            phase[i] = Complex::ONE;
            phase[j] = Complex::I;
            probes.push(ExtPosOp::from_operator(
                &CMatrix::outer(&phase, &phase).scale(Complex::from(0.5)),
            ));
        }
    }
    for i in 0..dim {
        probes.push(ExtPosOp::divergent(
            dim,
            Subspace::from_spanning(dim, &[ket(i)]),
        ));
    }
    probes
}

/// Whether two actions agree on the whole [`probe_family`].
pub fn actions_approx_eq(a: &Action, b: &Action) -> bool {
    assert_eq!(a.dim(), b.dim());
    probe_family(a.dim())
        .iter()
        .all(|x| a.apply(x).approx_eq(&b.apply(x)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_linalg::Complex;
    use qsim_quantum::{gates, states, Measurement};

    fn constant_superop(target: &CMatrix) -> Superoperator {
        // C_A(ρ) = tr(ρ)·A for a PSD A with spectral decomposition
        // Σ λ_k |v_k><v_k|: Kraus operators {√λ_k |v_k⟩⟨i|}_{k,i}.
        let dim = target.rows();
        let eig = qsim_linalg::eigen::hermitian_eigen(target);
        let mut kraus = Vec::new();
        for (k, &val) in eig.values.iter().enumerate() {
            if val <= 1e-12 {
                continue;
            }
            let v = eig.vector(k);
            for i in 0..dim {
                let mut basis = vec![Complex::ZERO; dim];
                basis[i] = Complex::ONE;
                kraus.push(CMatrix::outer(&v, &basis).scale(Complex::from(val.sqrt())));
            }
        }
        Superoperator::from_kraus(dim, dim, kraus)
    }

    #[test]
    fn identity_star_diverges_everywhere_reachable() {
        let id = Action::lift(Superoperator::identity(2));
        let rho = ExtPosOp::from_operator(&states::basis_density(2, 0));
        let out = id.star().apply(&rho);
        // Σₙ |0⟩⟨0| diverges exactly along |0⟩.
        assert_eq!(out.divergence().dim(), 1);
        let mixed = ExtPosOp::from_operator(&states::maximally_mixed(2));
        let out2 = id.star().apply(&mixed);
        assert_eq!(out2.divergence().dim(), 2);
    }

    #[test]
    fn measurement_loop_converges() {
        // (M1; …)* M0 with a Hadamard in the loop: a terminating quantum
        // while-loop; the star sum must converge to a finite class.
        let m = Measurement::computational_basis(2);
        let h = Superoperator::from_unitary(&gates::hadamard());
        let body = Action::lift(m.branch(1)).seq(&Action::lift(h));
        let loop_action = body.star().seq(&Action::lift(m.branch(0)));
        let rho = ExtPosOp::from_operator(&states::maximally_mixed(2));
        let out = loop_action.apply(&rho);
        assert!(out.is_finite());
        // Total probability of eventually exiting a measure-H loop is 1.
        assert!((out.finite_trace() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn star_of_constant_map_diverges_on_target_support() {
        // C_{|0⟩⟨0|}* at [ρ]: ρ + ∞·|0⟩⟨0|.
        let c0 = Action::lift(constant_superop(&states::basis_density(2, 0)));
        let c1 = Action::lift(constant_superop(&states::basis_density(2, 1)));
        let rho = ExtPosOp::from_operator(&states::maximally_mixed(2));
        let out0 = c0.star().apply(&rho);
        let out1 = c1.star().apply(&rho);
        assert_eq!(out0.divergence().dim(), 1);
        assert!(!out0.approx_eq(&out1));
        // Finite remainder: the ρ-component orthogonal to the divergence.
        assert!((out0.finite_trace() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn lifting_is_functorial() {
        // Lemma 3.8.(iii): ⟨E1 ∘ E2⟩↑ = ⟨E1⟩↑ ; ⟨E2⟩↑.
        let e1 = Superoperator::from_unitary(&gates::hadamard());
        let e2 = Measurement::computational_basis(2).branch(0);
        let composed = Action::lift(e1.compose(&e2));
        let sequential = Action::lift(e1).seq(&Action::lift(e2));
        assert!(actions_approx_eq(&composed, &sequential));
    }

    #[test]
    fn lifting_is_injective() {
        // Lemma 3.8.(ii).
        let h = Action::lift(Superoperator::from_unitary(&gates::hadamard()));
        let x = Action::lift(Superoperator::from_unitary(&gates::pauli_x()));
        assert!(!actions_approx_eq(&h, &x));
    }

    #[test]
    fn fixed_point_law_holds_in_the_model() {
        // 1 + a·a* = a* evaluated on probes (Theorem 3.6 instance),
        // for a trace-decreasing lifted action.
        let m = Measurement::computational_basis(2);
        let h = Superoperator::from_unitary(&gates::hadamard());
        let a = Action::lift(m.branch(1).compose(&h));
        let lhs = Action::identity(2).plus(&a.seq(&a.star()));
        let rhs = a.star();
        assert!(actions_approx_eq(&lhs, &rhs));
    }

    #[test]
    fn sliding_law_holds_in_the_model() {
        // (ab)* a = a (ba)*.
        let m = Measurement::computational_basis(2);
        let a = Action::lift(
            m.branch(0)
                .compose(&Superoperator::from_unitary(&gates::hadamard())),
        );
        let b = Action::lift(m.branch(1));
        let lhs = a.seq(&b).star().seq(&a);
        let rhs = a.seq(&b.seq(&a).star());
        assert!(actions_approx_eq(&lhs, &rhs));
    }

    #[test]
    fn divergent_input_through_lifted_action() {
        // ⟨H⟩↑ maps Σ|0⟩⟨0| to Σ|+⟩⟨+|.
        let h = Action::lift(Superoperator::from_unitary(&gates::hadamard()));
        let div0 = ExtPosOp::divergent(
            2,
            Subspace::from_spanning(2, &[vec![Complex::ONE, Complex::ZERO]]),
        );
        let out = h.apply(&div0);
        assert_eq!(out.divergence().dim(), 1);
        let plus = vec![
            Complex::from(std::f64::consts::FRAC_1_SQRT_2),
            Complex::from(std::f64::consts::FRAC_1_SQRT_2),
        ];
        assert!(out.divergence().contains(&plus, 1e-8));
    }

    #[test]
    fn zero_action_annihilates() {
        let z = Action::zero(2);
        let mixed = ExtPosOp::from_operator(&states::maximally_mixed(2));
        assert!(z.apply(&mixed).approx_eq(&ExtPosOp::zero(2)));
        assert!(z.star().apply(&mixed).approx_eq(&mixed)); // 0* = 1
    }
}
