//! The quantum path model `P(H)` (Section 3 of Peng–Ying–Wu, PLDI 2022).
//!
//! The path model is the paper's central technical device: a sound (and,
//! with the interpretation of Section 4, complete) semantic model of NKA
//! built from *extended positive operators* — equivalence classes of
//! countable multisets of PSD operators that can carry direction-resolved
//! infinities (Definition 3.3). Quantum path actions (Definition 3.4) are
//! linear monotone maps on those classes; lifted superoperators embed
//! `QC(H)` into the model (Definition 3.7 / Lemma 3.8).
//!
//! # Canonical forms
//!
//! [`ExtPosOp`] represents an equivalence class by the pair `(V, A)` of its
//! divergence subspace and compressed finite part. This is a *complete*
//! invariant: a series `⊎ᵢ ρᵢ` induces the lower-semicontinuous weight
//! `m(φ) = sup_J tr(S_J φ)` on PSD `φ`, the paper's relation `≲` holds iff
//! `m_ρ ≤ m_σ` pointwise (a Dini-type compactness argument on the density
//! simplex bridges the quantifier orders), and `m` is exactly
//! `φ ↦ tr(Aφ)` for `supp φ ⊆ V⊥`, `∞` otherwise. See `DESIGN.md` §3 for
//! the full argument.
//!
//! # Actions
//!
//! [`Action`] is a term language over lifted superoperators closed under
//! `+`, `;`/`⋄` and `*`, evaluated lazily on canonical forms
//! ([`Action::apply`]). Star evaluation accumulates partial sums with
//! divergence-direction extraction governed by [`StarPolicy`].
//!
//! # Examples
//!
//! `1*` interpreted over any `H` diverges in *every* direction, while the
//! star of a measurement branch stays finite:
//!
//! ```
//! use nka_qpath::{Action, ExtPosOp};
//! use qsim_quantum::{states, Superoperator};
//!
//! let id2 = Action::lift(Superoperator::identity(2));
//! let rho = ExtPosOp::from_operator(&states::basis_density(2, 0));
//! let diverged = id2.star().apply(&rho);
//! assert_eq!(diverged.divergence().dim(), 1); // |0⟩⟨0| repeated forever
//! ```

pub mod action;
pub mod ext_pos;
pub mod interp;

pub use action::{Action, StarPolicy};
pub use ext_pos::ExtPosOp;
pub use interp::Interpretation;
