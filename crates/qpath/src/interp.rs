//! Quantum interpretations of NKA expressions (Definition 4.1).

use crate::action::Action;
use nka_syntax::{Expr, ExprNode, Symbol};
use qsim_quantum::Superoperator;
use std::collections::HashMap;

/// A quantum interpretation setting `int = (H, eval)`: a Hilbert-space
/// dimension and an assignment of superoperators to alphabet symbols.
///
/// [`Interpretation::action`] is the map `Qint` of Definition 4.1;
/// [`Interpretation::dual_action`] is the dual interpretation `Q†int` of
/// Section 7.3 (atoms lift dualized, products compose with `⋄`).
///
/// # Examples
///
/// ```
/// use nka_qpath::{Interpretation, ExtPosOp};
/// use nka_syntax::{Expr, Symbol};
/// use qsim_quantum::{gates, states, Superoperator};
///
/// let mut int = Interpretation::new(2);
/// int.assign(Symbol::intern("h"), Superoperator::from_unitary(&gates::hadamard()));
/// let e: Expr = "h h".parse()?;
/// let rho = ExtPosOp::from_operator(&states::basis_density(2, 0));
/// let out = int.action(&e).apply(&rho);
/// assert!(out.approx_eq(&rho)); // H;H = id
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Interpretation {
    dim: usize,
    eval: HashMap<Symbol, Superoperator>,
}

impl Interpretation {
    /// An interpretation over a `dim`-dimensional Hilbert space with no
    /// symbols assigned yet.
    pub fn new(dim: usize) -> Interpretation {
        Interpretation {
            dim,
            eval: HashMap::new(),
        }
    }

    /// Assigns `eval(sym) = e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an endomorphism of the interpretation space.
    pub fn assign(&mut self, sym: Symbol, e: Superoperator) -> &mut Interpretation {
        assert_eq!(e.dim_in(), self.dim, "superoperator dimension mismatch");
        assert_eq!(e.dim_out(), self.dim, "superoperator dimension mismatch");
        self.eval.insert(sym, e);
        self
    }

    /// The Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The superoperator assigned to `sym`, if any.
    pub fn superoperator(&self, sym: Symbol) -> Option<&Superoperator> {
        self.eval.get(&sym)
    }

    /// `Qint(e)` — the quantum path action of an expression
    /// (Definition 4.1).
    ///
    /// # Panics
    ///
    /// Panics if `e` contains a symbol with no assignment.
    pub fn action(&self, e: &Expr) -> Action {
        match e.node() {
            ExprNode::Zero => Action::zero(self.dim),
            ExprNode::One => Action::identity(self.dim),
            ExprNode::Atom(sym) => {
                let sup = self
                    .eval
                    .get(&sym)
                    .unwrap_or_else(|| panic!("symbol {sym} has no interpretation"));
                Action::lift(sup.clone())
            }
            ExprNode::Add(l, r) => self.action(&l).plus(&self.action(&r)),
            ExprNode::Mul(l, r) => self.action(&l).seq(&self.action(&r)),
            ExprNode::Star(inner) => self.action(&inner).star(),
        }
    }

    /// `Q†int(e)` — the dual interpretation (footnote 5 of the paper):
    /// atoms are interpreted by their Schrödinger–Heisenberg duals and
    /// products compose in the reversed (`⋄`) order.
    ///
    /// # Panics
    ///
    /// Panics if `e` contains a symbol with no assignment.
    pub fn dual_action(&self, e: &Expr) -> Action {
        match e.node() {
            ExprNode::Zero => Action::zero(self.dim),
            ExprNode::One => Action::identity(self.dim),
            ExprNode::Atom(sym) => {
                let sup = self
                    .eval
                    .get(&sym)
                    .unwrap_or_else(|| panic!("symbol {sym} has no interpretation"));
                Action::lift(sup.dual())
            }
            ExprNode::Add(l, r) => self.dual_action(&l).plus(&self.dual_action(&r)),
            ExprNode::Mul(l, r) => self.dual_action(&l).diamond(&self.dual_action(&r)),
            ExprNode::Star(inner) => self.dual_action(&inner).star(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::actions_approx_eq;
    use crate::ext_pos::ExtPosOp;
    use qsim_quantum::{gates, states, Measurement};

    fn loop_interpretation() -> Interpretation {
        let m = Measurement::computational_basis(2);
        let h = Superoperator::from_unitary(&gates::hadamard());
        let mut int = Interpretation::new(2);
        int.assign(Symbol::intern("m0"), m.branch(0));
        int.assign(Symbol::intern("m1"), m.branch(1));
        int.assign(Symbol::intern("h"), h);
        int
    }

    fn e(src: &str) -> Expr {
        src.parse().unwrap()
    }

    #[test]
    fn while_loop_interpretation_terminates() {
        // Enc(while M = 1 do H done) = (m1 h)* m0.
        let int = loop_interpretation();
        let action = int.action(&e("(m1 h)* m0"));
        let rho = ExtPosOp::from_operator(&states::basis_density(2, 1));
        let out = action.apply(&rho);
        assert!(out.is_finite());
        assert!((out.finite_trace() - 1.0).abs() < 1e-6);
        // The output state is |0⟩⟨0| (the loop exits on outcome 0).
        assert!((out.finite_part()[(0, 0)].re - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nka_axiom_instances_hold_under_interpretation() {
        // Theorem 4.2 (soundness direction) on a few Figure-2 instances.
        let int = loop_interpretation();
        let pairs = [
            ("1 + m1 h (m1 h)*", "(m1 h)*"),
            ("(m1 h)* m1", "m1 (h m1)*"),
            ("(m0 + m1)*", "(m0* m1)* m0*"),
            ("m0 (m1 + h)", "m0 m1 + m0 h"),
        ];
        for (l, r) in pairs {
            assert!(
                actions_approx_eq(&int.action(&e(l)), &int.action(&e(r))),
                "{l} vs {r}"
            );
        }
    }

    #[test]
    fn nka_non_theorems_fail_under_some_interpretation() {
        // Completeness direction, observed through this interpretation:
        // idempotence really is refuted by the model.
        let int = loop_interpretation();
        assert!(!actions_approx_eq(
            &int.action(&e("m0 + m0")),
            &int.action(&e("m0"))
        ));
    }

    #[test]
    fn dual_interpretation_reverses_composition() {
        let int = loop_interpretation();
        // Q†(m0 h) = ⟨h†⟩ ; ⟨m0†⟩ = Q(h m0) with dualized atoms.
        let dual = int.dual_action(&e("m0 h"));
        let mut dual_int = Interpretation::new(2);
        for name in ["m0", "m1", "h"] {
            let sym = Symbol::intern(name);
            dual_int.assign(sym, int.superoperator(sym).unwrap().dual());
        }
        let reversed = dual_int.action(&e("h m0"));
        assert!(actions_approx_eq(&dual, &reversed));
    }

    #[test]
    #[should_panic(expected = "no interpretation")]
    fn unassigned_symbol_panics() {
        let int = Interpretation::new(2);
        let _ = int.action(&e("mystery_symbol_xyz"));
    }
}
