//! Extended positive operators `PO∞(H)` in canonical form (Section 3.2).

use qsim_linalg::{is_psd, lowner_le, CMatrix, Complex, Subspace, TOL};

/// An element of `PO∞(H)` in canonical form: a divergence subspace `V`
/// and a finite PSD part `A` supported on `W = V⊥`.
///
/// `[ρ]` for `ρ ∈ PO(H)` embeds as `(V = 0, A = ρ)` (Remark 3.1);
/// divergent classes such as `Σᵢ |0⟩⟨0|` are `(V = span|0⟩, A = 0)`.
/// The Löwner-style order of Definition 3.3 becomes:
/// `(V₁, A₁) ≤ (V₂, A₂)` iff `V₁ ⊆ V₂` and `P_{W₂} A₁ P_{W₂} ⊑ A₂`.
///
/// # Examples
///
/// ```
/// use nka_qpath::ExtPosOp;
/// use qsim_quantum::states;
///
/// let rho = ExtPosOp::from_operator(&states::basis_density(2, 0));
/// let sigma = ExtPosOp::from_operator(&states::maximally_mixed(2));
/// // ρ ≤ 2σ in the Löwner order, embedded faithfully:
/// assert!(rho.le(&sigma.scaled(2.0)));
/// assert!(!sigma.le(&rho));
/// ```
#[derive(Debug, Clone)]
pub struct ExtPosOp {
    dim: usize,
    div: Subspace,
    /// PSD, supported on `div`'s orthocomplement.
    fin: CMatrix,
}

impl ExtPosOp {
    /// The zero class `[O_H]`.
    pub fn zero(dim: usize) -> ExtPosOp {
        ExtPosOp {
            dim,
            div: Subspace::zero(dim),
            fin: CMatrix::zeros(dim, dim),
        }
    }

    /// Embeds a finite PSD operator (`ρ ↦ [ρ]`, Remark 3.1).
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not square, not Hermitian, or not PSD within
    /// `1e-7`.
    pub fn from_operator(rho: &CMatrix) -> ExtPosOp {
        assert!(rho.is_square(), "PO∞ element must be square");
        assert!(rho.is_hermitian(1e-7), "PO∞ element must be Hermitian");
        assert!(is_psd(rho, 1e-7), "PO∞ element must be PSD");
        ExtPosOp {
            dim: rho.rows(),
            div: Subspace::zero(rho.rows()),
            fin: rho.clone(),
        }
    }

    /// A purely divergent class `Σᵢ P` for the projector `P` onto `div`
    /// (finite part zero).
    pub fn divergent(dim: usize, div: Subspace) -> ExtPosOp {
        assert_eq!(div.ambient_dim(), dim);
        ExtPosOp {
            dim,
            div,
            fin: CMatrix::zeros(dim, dim),
        }
    }

    /// Builds the canonical form from raw parts, compressing `fin` onto
    /// the complement of `div`.
    pub fn from_parts(div: Subspace, fin: &CMatrix) -> ExtPosOp {
        let dim = div.ambient_dim();
        let w = div.complement();
        let pw = w.projector();
        let compressed = &(&pw * fin) * &pw;
        ExtPosOp {
            dim,
            div,
            fin: compressed,
        }
    }

    /// Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The divergence subspace `V`.
    pub fn divergence(&self) -> &Subspace {
        &self.div
    }

    /// The finite part `A` (supported on `V⊥`).
    pub fn finite_part(&self) -> &CMatrix {
        &self.fin
    }

    /// Whether the class is an embedded finite operator.
    pub fn is_finite(&self) -> bool {
        self.div.dim() == 0
    }

    /// The sum of two classes (eq. 3.2.5 restricted to two operands):
    /// divergence subspaces join, finite parts add and re-compress.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add(&self, other: &ExtPosOp) -> ExtPosOp {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        let div = self.div.join(&other.div);
        ExtPosOp::from_parts(div, &(&self.fin + &other.fin))
    }

    /// Scales the finite part by a non-negative factor (the divergence
    /// subspace is unchanged for `c > 0` and cleared for `c = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `c < 0`.
    pub fn scaled(&self, c: f64) -> ExtPosOp {
        assert!(c >= 0.0, "PO∞ scaling must be non-negative");
        if c == 0.0 {
            return ExtPosOp::zero(self.dim);
        }
        ExtPosOp {
            dim: self.dim,
            div: self.div.clone(),
            fin: self.fin.scale(Complex::from(c)),
        }
    }

    /// The canonical-order comparison `self ≤ other` (Definition 3.3 via
    /// the canonical-form theorem; see the crate docs).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn le(&self, other: &ExtPosOp) -> bool {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        if !self.div.is_subspace_of(&other.div, 1e-7) {
            return false;
        }
        // Compress self's finite part onto other's finite subspace.
        let w2 = other.div.complement();
        let pw2 = w2.projector();
        let compressed = &(&pw2 * &self.fin) * &pw2;
        lowner_le(&compressed, &other.fin, 1e-7)
    }

    /// Equivalence of classes within numerical tolerance.
    pub fn approx_eq(&self, other: &ExtPosOp) -> bool {
        self.dim == other.dim
            && self.div.approx_eq(&other.div, 1e-6)
            && self.fin.approx_eq(&other.fin, 1e-6)
    }

    /// Trace of the finite part (diagnostic; divergent directions carry
    /// "infinite trace" that this deliberately excludes).
    pub fn finite_trace(&self) -> f64 {
        self.fin.trace().re
    }

    /// Moves every eigendirection of the finite part with eigenvalue
    /// exceeding `cap` into the divergence subspace. Used by star
    /// evaluation to detect divergence.
    pub fn absorb_large_directions(&self, cap: f64) -> ExtPosOp {
        let eig = qsim_linalg::eigen::hermitian_eigen(&self.fin);
        let mut div = self.div.clone();
        let mut changed = false;
        for (k, &val) in eig.values.iter().enumerate() {
            if val > cap {
                div = div.extended_with(&eig.vector(k), TOL);
                changed = true;
            }
        }
        if !changed {
            return self.clone();
        }
        ExtPosOp::from_parts(div, &self.fin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_quantum::states;

    fn ket(dim: usize, k: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; dim];
        v[k] = Complex::ONE;
        v
    }

    #[test]
    fn embedding_preserves_lowner_order() {
        // Remark 3.1: PO(H) embeds via ρ ↦ [ρ].
        let mut seed = 11;
        for _ in 0..10 {
            let a = states::random_density(3, &mut seed).scale(Complex::from(0.5));
            let b = states::random_density(3, &mut seed);
            let sum = &a + &b; // a ⊑ a + b always
            let ea = ExtPosOp::from_operator(&a);
            let es = ExtPosOp::from_operator(&sum);
            assert!(ea.le(&es));
            assert!(ea.le(&ea));
        }
    }

    #[test]
    fn divergent_directions_are_distinguished() {
        // Σ|0⟩⟨0| vs Σ|1⟩⟨1| (Remark 3.1): distinct, both below Σ I.
        let d0 = ExtPosOp::divergent(2, Subspace::from_spanning(2, &[ket(2, 0)]));
        let d1 = ExtPosOp::divergent(2, Subspace::from_spanning(2, &[ket(2, 1)]));
        let full = ExtPosOp::divergent(2, Subspace::full(2));
        assert!(!d0.approx_eq(&d1));
        assert!(!d0.le(&d1));
        assert!(!d1.le(&d0));
        assert!(d0.le(&full));
        assert!(d1.le(&full));
        assert!(!full.le(&d0));
    }

    #[test]
    fn finite_classes_sit_below_divergent_ones() {
        let rho = ExtPosOp::from_operator(&states::basis_density(2, 0));
        let d0 = ExtPosOp::divergent(2, Subspace::from_spanning(2, &[ket(2, 0)]));
        assert!(rho.le(&d0));
        assert!(!d0.le(&rho));
        // … but a state with weight outside |0⟩ is NOT below Σ|0⟩⟨0|.
        let mixed = ExtPosOp::from_operator(&states::maximally_mixed(2));
        assert!(!mixed.le(&d0));
    }

    #[test]
    fn addition_joins_divergence_and_compresses() {
        let d0 = ExtPosOp::divergent(2, Subspace::from_spanning(2, &[ket(2, 0)]));
        let rho = ExtPosOp::from_operator(&states::maximally_mixed(2));
        let sum = d0.add(&rho);
        assert_eq!(sum.divergence().dim(), 1);
        // The |0⟩ component of ρ is absorbed into the divergence; only the
        // |1⟩ component survives in the finite part.
        assert!((sum.finite_trace() - 0.5).abs() < 1e-9);
        // Σ|0⟩⟨0| + ρ still dominates ρ and d0.
        assert!(d0.le(&sum));
        assert!(rho.le(&sum));
    }

    #[test]
    fn from_parts_compresses_cross_terms() {
        // A finite part with support leaking into the divergence subspace
        // is compressed onto the complement.
        let div = Subspace::from_spanning(2, &[ket(2, 0)]);
        let leaky = states::pure_state(&[Complex::ONE, Complex::ONE]); // |+⟩⟨+|
        let x = ExtPosOp::from_parts(div, &leaky);
        assert!((x.finite_part()[(0, 0)]).abs() < 1e-9);
        assert!((x.finite_part()[(1, 1)].re - 0.5).abs() < 1e-9);
    }

    #[test]
    fn absorb_large_directions() {
        let big = states::basis_density(2, 0).scale(Complex::from(1e9));
        let x = ExtPosOp::from_operator(&(&big + &states::basis_density(2, 1)));
        let absorbed = x.absorb_large_directions(1e6);
        assert_eq!(absorbed.divergence().dim(), 1);
        assert!((absorbed.finite_trace() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn scaling() {
        let rho = ExtPosOp::from_operator(&states::maximally_mixed(2));
        assert!((rho.scaled(4.0).finite_trace() - 4.0).abs() < 1e-9);
        assert!(rho.scaled(0.0).approx_eq(&ExtPosOp::zero(2)));
    }
}
