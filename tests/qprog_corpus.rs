//! The golden quantum-workload corpus, end to end: the checked-in
//! 25-query `prog_eq`/`hoare` fixture must decode, answer with its
//! recorded `expect` verdicts on an in-process `Session` (the oracle),
//! and produce the *same* verdicts through the real `nka batch --json`
//! binary — sequentially and sharded over `--jobs 4` workers.

use nka_quantum::api::json::Json;
use nka_quantum::api::{wire, Query, Session, Verdict};
use std::process::Command;

const CORPUS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/qprog_25.jsonl");

/// `(query, expected verdict name)` per corpus line, via the wire
/// decoder (which ignores the `expect` key) plus a raw-JSON read of it.
fn load_corpus() -> Vec<(Query, String)> {
    let text = std::fs::read_to_string(CORPUS).expect("fixture readable");
    text.lines()
        .filter_map(|line| {
            let query = wire::decode_request(line)
                .unwrap_or_else(|err| panic!("bad fixture line {line:?}: {err}"))?;
            let expect = Json::parse(line)
                .expect("fixture line is JSON")
                .get("expect")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("fixture line lacks expect: {line}"))
                .to_owned();
            Some((query, expect))
        })
        .collect()
}

#[test]
fn fixture_has_25_program_queries_with_expectations() {
    let corpus = load_corpus();
    assert_eq!(corpus.len(), 25);
    let prog_eq = corpus
        .iter()
        .filter(|(q, _)| matches!(q, Query::ProgEq { .. }))
        .count();
    let hoare = corpus
        .iter()
        .filter(|(q, _)| matches!(q, Query::Hoare { .. }))
        .count();
    assert_eq!(prog_eq + hoare, 25, "corpus is prog_eq/hoare only");
    assert!(prog_eq >= 10, "prog_eq underrepresented: {prog_eq}");
    assert!(hoare >= 10, "hoare underrepresented: {hoare}");
    // Both verdicts in both operations.
    for (op, want) in [
        ("prog_eq", "holds"),
        ("prog_eq", "refuted"),
        ("hoare", "holds"),
        ("hoare", "refuted"),
    ] {
        assert!(
            corpus.iter().any(|(q, e)| q.kind().op() == op && e == want),
            "no {op} query expecting {want}"
        );
    }
}

/// The in-process oracle: one warm session must answer every corpus
/// line with its recorded verdict.
#[test]
fn oracle_session_answers_the_recorded_verdicts() {
    let corpus = load_corpus();
    let mut session = Session::new();
    for (i, (query, expect)) in corpus.iter().enumerate() {
        let resp = session.run(query);
        assert_eq!(
            resp.verdict.name(),
            expect,
            "line {}: {:?} answered {:?}",
            i + 1,
            query.kind(),
            resp.verdict
        );
        match (&query, &resp.verdict) {
            (Query::ProgEq { .. }, Verdict::ProgEq { enc_p, enc_q, .. }) => {
                assert!(!enc_p.is_empty() && !enc_q.is_empty());
            }
            (Query::Hoare { .. }, Verdict::Hoare { encoded, .. }) => {
                assert!(encoded.contains('≤'), "no inequality in {encoded:?}");
            }
            (q, v) => panic!("mismatched verdict shape: {q:?} → {v:?}"),
        }
    }
}

/// Runs `nka batch --json` over the corpus with the given extra args;
/// returns the stable projection of each output line (per-execution
/// `stats`/`micros` dropped) plus the verdict names.
fn batch_lines(extra: &[&str]) -> Vec<(String, String)> {
    let output = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(extra.iter().copied().chain(["batch", "--json", CORPUS]))
        .output()
        .expect("nka binary runs");
    assert!(
        output.status.success(),
        "batch exited {:?}: {}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("UTF-8 output");
    stdout
        .lines()
        .map(|line| {
            let value = Json::parse(line)
                .unwrap_or_else(|err| panic!("unparseable output line ({err}): {line}"));
            let verdict = value
                .get("verdict")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("missing verdict: {line}"))
                .to_owned();
            // Stable projection: drop the per-execution fields, keep
            // query fields + verdict payload for the seq-vs-jobs diff.
            let mut stable: Vec<String> = Vec::new();
            let Json::Obj(fields) = &value else {
                panic!("response is not an object: {line}")
            };
            for (k, v) in fields {
                if k != "stats" && k != "micros" {
                    stable.push(format!("{k}={v}"));
                }
            }
            (stable.join(","), verdict)
        })
        .collect()
}

/// The api's rendered inequality must be byte-identical to what the
/// Theorem 7.8 derivation compiler (`nkat::qhl::encode_qhl`) concludes
/// for the same triple taken as an atomic derivation — the two layers
/// share the effect-naming convention (`I ↦ e/0`, fresh `qN`/`qN_neg`
/// in pre-before-post order, equal effects sharing a term).
#[test]
fn hoare_encoding_matches_the_theorem_7_8_compiler() {
    use nka_quantum::nkat::qhl::{encode_qhl, HoareTriple, QhlDerivation};
    use nka_quantum::qprog::EncoderSetting;

    let mut session = Session::new();
    let mut checked = 0;
    for (query, expect) in load_corpus() {
        // encode_qhl only accepts derivations that conclude, i.e.
        // triples that hold.
        let Query::Hoare { pre, prog, post } = &query else {
            continue;
        };
        if expect != "holds" {
            continue;
        }
        let resp = session.run(&query);
        let Verdict::Hoare { holds, encoded } = &resp.verdict else {
            panic!("expected a Hoare verdict")
        };
        assert!(*holds);
        let triple = HoareTriple::new(pre.matrix(), prog.program(), post.matrix());
        let derivation = QhlDerivation::Atomic(triple);
        let mut setting = EncoderSetting::new(prog.dim());
        let compiled = encode_qhl(&derivation, prog.program(), &mut setting)
            .unwrap_or_else(|err| panic!("encode_qhl failed for {query:?}: {err}"));
        let conclusion = compiled
            .derivation
            .conclusion(compiled.conclusion)
            .to_string();
        assert_eq!(
            encoded, &conclusion,
            "api inequality diverged from the derivation compiler"
        );
        checked += 1;
    }
    assert!(checked >= 5, "only {checked} holding hoare lines checked");
}

#[test]
fn nka_batch_matches_the_oracle_sequentially_and_parallel() {
    let corpus = load_corpus();
    let sequential = batch_lines(&[]);
    assert_eq!(sequential.len(), 25, "one response line per query");
    for (i, ((_, verdict), (_, expect))) in sequential.iter().zip(&corpus).enumerate() {
        assert_eq!(
            verdict,
            expect,
            "line {} verdict drifted from oracle",
            i + 1
        );
    }
    // --jobs 4 must be byte-identical on the stable projection.
    let parallel = batch_lines(&["--jobs", "4"]);
    assert_eq!(parallel.len(), 25);
    for (i, (seq, par)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(
            seq,
            par,
            "line {}: --jobs 4 diverged from sequential",
            i + 1
        );
    }
}
