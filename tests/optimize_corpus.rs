//! The golden optimizer corpus, end to end: the checked-in 20-program
//! `optimize` fixture must decode, answer with its recorded step count
//! and final-program hash on an in-process `Session`, replay every
//! final certificate on a *fresh* session, and produce byte-identical
//! output through the real `nka batch --json` binary — sequentially
//! and sharded over `--jobs 4` workers (every applied step is
//! engine-certified before it lands and refuted advisories are never
//! applied, so worker layout cannot change a single rewrite).
//!
//! Also home of the fixpoint-termination regression (the deliberately
//! cycling rule pair): naming `loop-peeling` arms the growing peel
//! direction, whose output the rolling direction would immediately
//! undo — the interned-encoding seen-set must break the cycle and the
//! step budget must bail with a structured note, never hang or return
//! an uncertified program.

use nka_quantum::api::json::Json;
use nka_quantum::api::{wire, Query, Session, Verdict};
use nka_quantum::nka::snapshot::fnv1a64;
use std::process::Command;

const CORPUS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/optimize_20.jsonl");

/// `(query, expected step count, expected final-program hash)` per
/// corpus line, via the wire decoder (which ignores the `expect*`
/// annotation keys) plus a raw-JSON read of them.
fn load_corpus() -> Vec<(Query, usize, String)> {
    let text = std::fs::read_to_string(CORPUS).expect("fixture readable");
    text.lines()
        .filter_map(|line| {
            let query = wire::decode_request(line)
                .unwrap_or_else(|err| panic!("bad fixture line {line:?}: {err}"))?;
            let value = Json::parse(line).expect("fixture line is JSON");
            assert_eq!(
                value.get("expect").and_then(Json::as_str),
                Some("optimized"),
                "fixture line lacks expect: {line}"
            );
            let steps = value
                .get("expect_steps")
                .and_then(Json::as_i64)
                .unwrap_or_else(|| panic!("fixture line lacks expect_steps: {line}"))
                as usize;
            let hash = value
                .get("expect_final_hash")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("fixture line lacks expect_final_hash: {line}"))
                .to_owned();
            Some((query, steps, hash))
        })
        .collect()
}

#[test]
fn fixture_has_20_optimize_queries_covering_the_certifiable_catalog() {
    let corpus = load_corpus();
    assert_eq!(corpus.len(), 20);
    assert!(corpus
        .iter()
        .all(|(q, _, _)| matches!(q, Query::Optimize { .. })));
    // Zero-step (already optimal / advisory-only) and multi-step
    // programs are both represented.
    assert!(corpus.iter().any(|(_, steps, _)| *steps == 0));
    assert!(corpus.iter().any(|(_, steps, _)| *steps >= 2));
    // A rules filter and a step budget appear in the fixture.
    assert!(corpus.iter().any(|(q, _, _)| matches!(
        q,
        Query::Optimize { rules, .. } if !rules.is_empty()
    )));
    assert!(corpus
        .iter()
        .any(|(q, _, _)| matches!(q, Query::Optimize { max_steps: 1, .. })));
}

/// The in-process oracle: one warm session must answer every corpus
/// line with its recorded step count and final-program hash, every
/// applied step must name a catalog rule with a citation, and every
/// final certificate must replay to `holds` on a fresh session —
/// including the zero-step lines, whose certificate is the reflexive
/// pair with an empty trace.
#[test]
fn oracle_session_answers_the_recorded_rewrites_and_certificates_replay() {
    let corpus = load_corpus();
    let mut session = Session::new();
    let mut zero_step_replayed = 0;
    for (i, (query, expect_steps, expect_hash)) in corpus.iter().enumerate() {
        let resp = session.run(query);
        let Verdict::Optimized {
            optimized,
            steps,
            certificate,
            fixpoint,
            note,
        } = &resp.verdict
        else {
            panic!("line {}: expected an Optimized verdict", i + 1);
        };
        assert_eq!(steps.len(), *expect_steps, "line {} steps drifted", i + 1);
        assert_eq!(
            format!("{:016x}", fnv1a64(optimized.as_bytes())),
            *expect_hash,
            "line {}: final program drifted: {optimized}",
            i + 1
        );
        // A run is either a fixpoint or carries the budget-bail note.
        assert!(
            *fixpoint || note.as_deref().is_some_and(|n| n.contains("step budget")),
            "line {}: neither fixpoint nor budget note",
            i + 1
        );
        for step in steps {
            assert!(!step.citation().is_empty(), "line {}: blank cite", i + 1);
        }
        assert_eq!(certificate.expect, "holds");
        let Query::Optimize { prog, .. } = query else {
            unreachable!()
        };
        assert_eq!(certificate.p, prog.source(), "line {}: cert.p", i + 1);
        assert_eq!(certificate.q, *optimized, "line {}: cert.q", i + 1);
        if *expect_steps == 0 {
            assert_eq!(
                certificate.p,
                certificate.q,
                "line {}: a zero-step run certifies the identity",
                i + 1
            );
            zero_step_replayed += 1;
        }
        let replay = Query::prog_eq(&certificate.p, &certificate.q)
            .unwrap_or_else(|err| panic!("line {}: bad certificate: {err}", i + 1));
        let verdict = Session::new().run(&replay).verdict;
        assert!(
            matches!(verdict, Verdict::ProgEq { holds: true, .. }),
            "line {}: certificate failed to replay: {} vs {}",
            i + 1,
            certificate.p,
            certificate.q
        );
    }
    assert!(zero_step_replayed >= 3, "too few identity certificates");
}

/// Satellite regression: a deliberately cycling rule pair. Naming
/// `loop-peeling` arms peel-forward, whose rewrite the roll direction
/// would undo one step later; the interned-encoding seen-set blocks
/// the re-roll (counted as a cycle break) and the step budget bails
/// with a structured note — bounded steps, certified output, no hang.
#[test]
fn cycling_peel_roll_pair_bails_on_budget_with_certified_output() {
    let mut session = Session::new();
    let query = Query::optimize(
        "qubits 2; while q0 { h q1 }",
        &["loop-peeling".to_owned()],
        3,
        1,
    )
    .expect("well-formed");
    let resp = session.run(&query);
    let Verdict::Optimized {
        optimized,
        steps,
        certificate,
        fixpoint,
        note,
    } = &resp.verdict
    else {
        panic!("expected an Optimized verdict");
    };
    assert_eq!(steps.len(), 3, "exactly max_steps peels, then bail");
    assert!(steps.iter().all(|s| s.rule == "loop-peeling"));
    assert!(!fixpoint);
    assert!(
        note.as_deref()
            .is_some_and(|n| n.contains("step budget exhausted after 3 step(s)")),
        "missing structured budget note: {note:?}"
    );
    let stats = session.optimize_stats();
    assert_eq!(stats.budget_bails, 1);
    assert!(
        stats.cycle_breaks > 0,
        "the roll direction must have been seen-set-blocked at least once"
    );
    // The bailed-out program is still certified equivalent.
    assert_eq!(certificate.q, *optimized);
    let replay = Query::prog_eq(&certificate.p, &certificate.q).expect("replayable");
    assert!(matches!(
        Session::new().run(&replay).verdict,
        Verdict::ProgEq { holds: true, .. }
    ));
}

/// Runs `nka batch --json` over the corpus with the given extra args;
/// returns the stable projection of each output line (per-execution
/// `stats`/`micros` dropped).
fn batch_lines(extra: &[&str]) -> Vec<String> {
    let output = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(extra.iter().copied().chain(["batch", "--json", CORPUS]))
        .output()
        .expect("nka binary runs");
    assert!(
        output.status.success(),
        "batch exited {:?}: {}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("UTF-8 output");
    stdout
        .lines()
        .map(|line| {
            let value = Json::parse(line)
                .unwrap_or_else(|err| panic!("unparseable output line ({err}): {line}"));
            let Json::Obj(fields) = &value else {
                panic!("response is not an object: {line}")
            };
            fields
                .iter()
                .filter(|(k, _)| k != "stats" && k != "micros")
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect()
}

#[test]
fn nka_batch_matches_the_oracle_sequentially_and_parallel() {
    let corpus = load_corpus();
    let sequential = batch_lines(&[]);
    assert_eq!(sequential.len(), 20, "one response line per query");
    for (i, (line, (_, expect_steps, _))) in sequential.iter().zip(&corpus).enumerate() {
        assert!(
            line.contains("verdict=\"optimized\""),
            "line {}: {line}",
            i + 1
        );
        // Each step carries exactly one "citation" key (the
        // certificate object has none), so the count is the trace
        // length.
        let step_objects = line.matches("\"citation\":").count();
        assert_eq!(
            step_objects,
            *expect_steps,
            "line {}: step count drifted: {line}",
            i + 1
        );
    }
    // --jobs 4 must be byte-identical on the stable projection — this
    // includes every step trace and the certificate's embedded engine
    // stats, so a layout-dependent rewrite decision would fail here.
    let parallel = batch_lines(&["--jobs", "4"]);
    assert_eq!(parallel.len(), 20);
    for (i, (seq, par)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(
            seq,
            par,
            "line {}: --jobs 4 diverged from sequential",
            i + 1
        );
    }
}
