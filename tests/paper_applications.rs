//! Acceptance tests for the paper's applications: §5 rules, §6 example,
//! Appendix B QSP, Appendix C.5 completeness — the cross-crate versions
//! of the per-module tests, kept small enough for CI.

use nka_quantum::apps::{compiler_opt, completeness, normal_form_example, qsp};
use nka_quantum::qprog::normal_form::{normalize, verify_normal_form};
use nka_quantum::qprog::Program;
use nka_quantum::syntax::Symbol;
use qsim_quantum::{gates, Measurement};

#[test]
fn fig4_unrolling_full_story() {
    let horn = compiler_opt::loop_unrolling_proof();
    horn.assert_checked();
    assert!(compiler_opt::unrolling_hypotheses_hold(1, 1e-9));
    assert!(compiler_opt::verify_loop_unrolling_semantically(1, 1e-7));
}

#[test]
fn fig4_boundary_full_story() {
    let horn = compiler_opt::loop_boundary_proof();
    horn.assert_checked();
    assert!(compiler_opt::verify_loop_boundary_semantically(1, 1e-7));
}

#[test]
fn sec6_full_story() {
    let horn = normal_form_example::section6_proof();
    horn.assert_checked();
    assert!(normal_form_example::verify_section6_semantically(1e-7));
}

#[test]
fn thm61_transformation_on_a_two_loop_program() {
    let meas = Measurement::computational_basis(2);
    let h = Program::unitary("h", &gates::hadamard());
    let coin = Program::while_loop(["m0", "m1"], &meas, h);
    let program = coin.then(&coin);
    let nf = normalize(&program);
    assert_eq!(nf.program().loop_count(), 1);
    assert!(verify_normal_form(&program, &nf, 1e-6));
}

#[test]
fn appendix_b_qsp_full_story() {
    let horn = qsp::qsp_optimization_proof();
    horn.assert_checked();
    let inst = qsp::QspInstance::new(2, 2);
    assert!(inst.hypotheses_hold(1e-8));
    assert!(inst.programs_equal(1e-7));
}

#[test]
fn appendix_c5_on_a_three_letter_alphabet() {
    let alphabet = vec![
        Symbol::intern("a"),
        Symbol::intern("b"),
        Symbol::intern("c"),
    ];
    let model = completeness::CompletenessModel::new(&alphabet, 1);
    assert_eq!(model.dim(), 4);
    for src in ["a", "a + b + c", "a*", "1*", "(a + b)* c"] {
        let e = src.parse().unwrap();
        assert!(model.check_c51_on_epsilon(&e), "C.5.1 failed for {src}");
    }
}
