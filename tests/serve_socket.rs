//! Serve v2 end-to-end: the concurrent socket server must be
//! observationally identical to sequential `nka batch` — same verdicts
//! and payloads for every request, over any number of connections, any
//! worker-pool size, and across forced worker recycles — and its
//! failure modes must stay contained: backpressure bounds memory under
//! slow readers, a dead client costs only its own connection, and both
//! drain paths (signal → exit 0, arena cap → exit 3) answer everything
//! already read before exiting. The final test drives the real `nka`
//! and `nka-loadgen` binaries over a Unix socket with a real SIGTERM.

use nka_quantum::api::{wire, Session};
use nka_quantum::serve::{ListenAddr, ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::Duration;

const BATCH_FILE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/batch_50.jsonl");
const QPROG_FILE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/qprog_25.jsonl");

/// The mixed corpus (equalities, series, prove, prog_eq, hoare) with
/// the expected stable projection of each response, computed by a
/// sequential warm session — the `nka batch` semantics the server is
/// held to.
fn corpus_with_expected(json: bool) -> Vec<(String, String)> {
    let mut session = Session::new();
    let mut items = Vec::new();
    for path in [BATCH_FILE, QPROG_FILE] {
        let text = std::fs::read_to_string(path).expect("fixture readable");
        for line in text.lines() {
            let rendered = match wire::decode_request(line).expect("fixture lines decode") {
                None => continue,
                Some(query) => {
                    let resp = session.run(&query);
                    if json {
                        wire::encode_response(&query, &resp)
                    } else {
                        wire::encode_response_text(&query, &resp)
                    }
                }
            };
            items.push((line.to_owned(), wire::stable_response_projection(&rendered)));
        }
    }
    assert!(items.len() >= 75, "expected the full mixed corpus");
    items
}

fn bind(cfg: ServeConfig) -> Server {
    Server::bind(cfg, &[ListenAddr::Tcp("127.0.0.1:0".to_owned())]).expect("bind on a free port")
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.tcp_addrs()[0]).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// Round-trips every corpus item over one connection, asserting each
/// response matches the sequential expectation byte-for-byte (modulo
/// the volatile stats/micros fields).
fn replay_and_diff(stream: TcpStream, items: &[(String, String)], iterations: usize) {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut line = String::new();
    for _ in 0..iterations {
        for (request, expected) in items {
            writer
                .write_all(format!("{request}\n").as_bytes())
                .expect("request writes");
            line.clear();
            assert!(
                reader.read_line(&mut line).expect("response reads") > 0,
                "server closed mid-stream"
            );
            assert_eq!(
                &wire::stable_response_projection(&line),
                expected,
                "socket response diverged from sequential batch for {request}"
            );
        }
    }
}

#[test]
fn concurrent_connections_match_sequential_batch() {
    let items = std::sync::Arc::new(corpus_with_expected(true));
    let server = bind(ServeConfig {
        workers: 4,
        json: true,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let stream = connect(&server);
            let items = std::sync::Arc::clone(&items);
            std::thread::spawn(move || replay_and_diff(stream, &items, 2))
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    handle.begin_drain(0, "test complete");
    assert_eq!(server.join(), 0, "clean drain after a full mixed load");
    let block = handle.stats_block();
    let expected_queries = 4 * 2 * items.len() as u64;
    assert_eq!(block.queries, expected_queries);
    let serve = block.serve.expect("serve counters present");
    assert_eq!(serve.connections_opened, 4);
    assert_eq!(serve.dropped_mid_response, 0);
    // The per-op histograms cover the mixed ops, including the quantum
    // workloads.
    use nka_quantum::api::QueryKind;
    for kind in [QueryKind::NkaEq, QueryKind::ProgEq, QueryKind::Hoare] {
        assert!(
            block.ops.op(kind).count() > 0,
            "no latency samples for {kind:?}"
        );
    }
}

#[test]
fn graceful_drain_across_forced_worker_recycle() {
    let items = corpus_with_expected(false);
    let mut cfg = ServeConfig {
        workers: 2,
        json: false,
        ..ServeConfig::default()
    };
    // Recycle each worker's engine every 7 queries — the stream crosses
    // many recycle boundaries and must not change a single verdict.
    cfg.session.recycle_after_queries = Some(7);
    let server = bind(cfg);
    let handle = server.handle();
    replay_and_diff(connect(&server), &items, 2);
    handle.begin_drain(0, "test complete");
    assert_eq!(server.join(), 0, "drain is clean across recycles");
    let serve = handle.stats_block().serve.expect("serve counters");
    let recycles: u64 = serve.worker_recycles.iter().sum();
    assert!(
        recycles >= 2,
        "the load should have forced worker recycles, saw {recycles}"
    );
}

#[test]
fn arena_cap_answers_in_flight_then_exits_3() {
    let server = bind(ServeConfig {
        workers: 1,
        json: true,
        // Any real query interns more than one node, so the very first
        // answer trips the cap and begins the drain.
        max_arena_nodes: Some(1),
        ..ServeConfig::default()
    });
    let stream = connect(&server);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    // Pipeline a burst without reading: everything the server has read
    // when the cap trips must still be answered before it exits.
    for _ in 0..10 {
        writer.write_all(b"p q = p q\n").expect("request writes");
    }
    writer.flush().expect("flush");
    let code = server.join();
    assert_eq!(code, 3, "the arena cap uses the supervisor exit code");
    let mut answered = 0;
    let mut line = String::new();
    while {
        line.clear();
        reader.read_line(&mut line).expect("read until EOF") > 0
    } {
        assert!(
            line.contains("\"verdict\":\"holds\""),
            "in-flight answer corrupted during cap drain: {line}"
        );
        answered += 1;
    }
    assert!(
        answered >= 1,
        "the request that tripped the cap was not answered"
    );
}

#[test]
fn slow_reader_backpressure_bounds_memory() {
    const DEPTH: usize = 4;
    const REQUESTS: usize = 400;
    let server = bind(ServeConfig {
        workers: 1,
        queue_depth: DEPTH,
        json: false, // short response lines: the unread responses must
        // fit in kernel socket buffers while the client stalls
        ..ServeConfig::default()
    });
    let handle = server.handle();
    let stream = connect(&server);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let writer_stream = stream;
    let writer = std::thread::spawn(move || {
        let mut writer = writer_stream;
        for _ in 0..REQUESTS {
            writer.write_all(b"p = p\n").expect("request writes");
        }
        writer.flush().expect("flush");
    });
    // Stall as a reader while the writer floods. The server must stop
    // reading the socket once the connection's window fills, so its
    // pending count — and the raw lines it buffers — stay bounded.
    std::thread::sleep(Duration::from_millis(600));
    let pending = handle.pending_now();
    assert!(
        pending <= DEPTH + 1,
        "backpressure failed: {pending} pending > window of {DEPTH}"
    );
    // The flood re-asks one interned query, so the process arena must
    // not grow with the request count (`memory_stats` is the same
    // process-wide accounting `--max-arena-nodes` governs).
    let mem = Session::new().memory_stats();
    assert!(
        mem.arena_resident_nodes < 10_000,
        "arena grew under backpressure: {} resident nodes",
        mem.arena_resident_nodes
    );
    // Unstall: every flooded request must still be answered, in order.
    let mut line = String::new();
    for i in 0..REQUESTS {
        line.clear();
        assert!(
            reader.read_line(&mut line).expect("response reads") > 0,
            "stream ended after {i} of {REQUESTS} responses"
        );
        assert!(line.contains("⊢NKA"), "answer {i} corrupted: {line}");
    }
    writer.join().expect("writer thread");
    handle.begin_drain(0, "test complete");
    assert_eq!(server.join(), 0);
}

#[test]
fn dead_client_mid_response_only_costs_its_own_connection() {
    let server = bind(ServeConfig {
        workers: 2,
        json: false,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    // Client A floods requests and vanishes without reading a byte —
    // the responses hit a closed socket (EPIPE/ECONNRESET territory).
    {
        let mut a = connect(&server);
        for _ in 0..300 {
            a.write_all(b"p q r = p q r\n").expect("request writes");
        }
        a.flush().expect("flush");
        // Drop: close both halves with responses still in flight.
    }
    // Client B must be completely unaffected, served by the same pool.
    let items = corpus_with_expected(false);
    replay_and_diff(connect(&server), &items[..20], 1);
    handle.begin_drain(0, "test complete");
    assert_eq!(
        server.join(),
        0,
        "a dead client must never take the server down"
    );
}

/// The real binaries, end to end: `nka serve --listen unix:…` under
/// load from `nka-loadgen`, then a real SIGTERM — the supervisor
/// contract (drain, exit 0) over a real process boundary.
#[test]
fn binary_serve_loadgen_sigterm_drain() {
    let sock = std::env::temp_dir().join(format!("nka-serve-e2e-{}.sock", std::process::id()));
    let sock_arg = format!("unix:{}", sock.display());
    let mut server = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["--json", "serve", "--listen", &sock_arg, "--workers", "2"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("server spawns");
    // Wait for the listener (it announces on stderr, but polling the
    // socket file is simpler than a partial stderr read).
    for _ in 0..100 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(sock.exists(), "server never bound {}", sock.display());

    let loadgen = Command::new(env!("CARGO_BIN_EXE_nka-loadgen"))
        .args([
            "--connect",
            &sock_arg,
            "--connections",
            "4",
            "--iterations",
            "2",
            "--json",
            BATCH_FILE,
            QPROG_FILE,
        ])
        .output()
        .expect("loadgen runs");
    let summary = String::from_utf8_lossy(&loadgen.stdout);
    assert!(
        loadgen.status.success(),
        "loadgen found diffs or failed:\n{summary}{}",
        String::from_utf8_lossy(&loadgen.stderr)
    );
    assert!(summary.contains(" 0 diffs"), "diffs reported: {summary}");
    assert!(summary.contains("p99="), "no latency line: {summary}");

    let kill = Command::new("kill")
        .args(["-TERM", &server.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let status = server.wait().expect("server exits");
    assert_eq!(status.code(), Some(0), "SIGTERM must drain to exit 0");
    let mut stderr = String::new();
    server
        .stderr
        .take()
        .expect("piped stderr")
        .read_to_string(&mut stderr)
        .expect("stderr reads");
    assert!(
        stderr.contains("drained: shutdown signal received"),
        "no drain note in server stderr:\n{stderr}"
    );
    assert!(!sock.exists(), "socket file not cleaned up on drain");
}
