//! Arena lifecycle contract tests: retiring a scratch scope never
//! invalidates anything persistent — cached verdicts for persistent
//! terms survive (decide-after-prove parity with a fresh session), the
//! parallel batch stays verdict-identical under worker recycling, and
//! the scope/promote API upholds its identity guarantees.

use nka_quantum::syntax::{random_expr, Expr, ExprGenConfig, ScratchScope, Symbol};
use nka_quantum::{Query, Session, SessionOptions, Verdict};
use proptest::prelude::*;

fn gen_config() -> ExprGenConfig {
    ExprGenConfig::new(vec![
        Symbol::intern("a"),
        Symbol::intern("b"),
        Symbol::intern("c"),
    ])
    .with_target_size(10)
}

/// A session whose prover gives up quickly — these tests exercise the
/// scope lifecycle around the search, not the search itself.
fn session() -> Session {
    Session::with_options(
        SessionOptions::builder()
            .prove_max_expansions(30)
            .build()
            .unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The satellite contract: run equality queries (persistent terms,
    /// verdicts cached), churn the arena with `Prove` traffic (each
    /// query spins up and retires a scratch scope), then re-decide.
    /// The warm session must (a) answer from its cache and (b) agree
    /// with a fresh session on every pair.
    #[test]
    fn retiring_scratch_scopes_preserves_persistent_verdicts(seed in any::<u64>()) {
        let config = gen_config();
        let mut state = seed | 1;
        let pairs: Vec<(Expr, Expr)> = (0..4)
            .map(|_| (random_expr(&config, &mut state), random_expr(&config, &mut state)))
            .collect();

        let mut warm = session();
        let first: Vec<Verdict> = pairs
            .iter()
            .map(|&(lhs, rhs)| warm.run(&Query::NkaEq { lhs, rhs }).verdict)
            .collect();

        // Scratch churn, both through the API (the prover's scope) and
        // through raw scopes on this thread.
        for &(lhs, rhs) in &pairs {
            let hyp = (pairs[0].0, pairs[0].1);
            let _ = warm.run(&Query::Prove { lhs, rhs, hyps: vec![hyp] });
        }
        {
            let _scope = ScratchScope::enter();
            let _junk = pairs[0].0.star().mul(&pairs[1].0.star()).star();
        }

        let mut fresh = session();
        for (i, &(lhs, rhs)) in pairs.iter().enumerate() {
            let again = warm.run(&Query::NkaEq { lhs, rhs });
            let cold = fresh.run(&Query::NkaEq { lhs, rhs });
            // Same verdict as before the churn, …
            prop_assert_eq!(&again.verdict, &first[i], "pair {} changed verdict", i);
            // … still served from the (persistent-keyed) cache, …
            prop_assert!(
                again.stats_delta.answer_hits >= 1,
                "pair {} was recomputed: scratch retirement evicted a persistent entry",
                i
            );
            // … and equal to what a scratch-naive session computes.
            prop_assert_eq!(&again.verdict, &cold.verdict, "pair {} diverged from fresh", i);
        }
    }

    /// Promotion is an identity on meaning: a term built inside a scope
    /// and promoted is structurally identical to the same term built
    /// outside any scope.
    #[test]
    fn promotion_commutes_with_persistent_interning(seed in any::<u64>()) {
        let config = gen_config();
        let mut state = seed | 1;
        let reference = random_expr(&config, &mut state);
        let promoted = {
            let scope = ScratchScope::enter();
            // Rebuild something derived from the reference in-scope.
            let derived = reference.star().add(&reference);
            scope.promote(&derived)
        };
        prop_assert!(!promoted.id().is_scratch());
        // Building the same derivation persistently lands on the same id.
        let direct = reference.star().add(&reference);
        prop_assert_eq!(promoted, direct);
        prop_assert_eq!(promoted.to_string(), direct.to_string());
    }
}

#[test]
fn recycled_parallel_workers_stay_verdict_identical() {
    use nka_quantum::run_batch_parallel;
    let config = gen_config();
    let mut state = 0x5eed_u64;
    let queries: Vec<Query> = (0..24)
        .map(|i| {
            let lhs = random_expr(&config, &mut state);
            let rhs = if i % 3 == 0 {
                lhs
            } else {
                random_expr(&config, &mut state)
            };
            Query::NkaEq { lhs, rhs }
        })
        .collect();
    let baseline = run_batch_parallel(&queries, &SessionOptions::default(), 1);
    let recycled_opts = SessionOptions::builder()
        .recycle_after_queries(Some(2))
        .build()
        .unwrap();
    for jobs in [1, 3] {
        let responses = run_batch_parallel(&queries, &recycled_opts, jobs);
        for (i, (base, got)) in baseline.iter().zip(&responses).enumerate() {
            assert_eq!(base.verdict, got.verdict, "query {i} at jobs={jobs}");
        }
    }
}

#[test]
fn session_memory_stats_are_coherent() {
    let mut session = session();
    let resp = session.run(
        &Query::prove(
            "memA (memA memB)",
            "memB (memA memA)",
            &["memA memB = memB memA"],
        )
        .unwrap(),
    );
    assert!(matches!(resp.verdict, Verdict::Proved { .. }));
    let mem = session.memory_stats();
    assert_eq!(
        mem.arena_resident_nodes,
        mem.arena_persistent_nodes + mem.scratch_live_nodes
    );
    assert!(mem.scratch_retired_total >= 1, "prove retired no scratch");
    assert!(mem.scratch_scopes_retired >= 1);
    assert_eq!(mem.queries_run, 1);
    assert_eq!(mem.engine_recycles, 0);
}
