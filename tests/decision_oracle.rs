//! DECIDE-SCALE support: the decision procedure against the truncated
//! power-series oracle, and the N̄-specific separations that make NKA
//! non-idempotent.

use nka_quantum::semiring::ExtNat;
use nka_quantum::series::{all_words, eval};
use nka_quantum::syntax::{random_expr, Expr, ExprGenConfig, Symbol};
use nka_quantum::wfa::{decide_eq, thompson, Decider};

fn e(src: &str) -> Expr {
    src.parse().unwrap()
}

#[test]
fn thompson_coefficients_match_series_on_random_expressions() {
    let alphabet = vec![Symbol::intern("a"), Symbol::intern("b")];
    let config = ExprGenConfig::new(alphabet.clone()).with_target_size(9);
    let mut seed = 0xABCDEF;
    for _ in 0..60 {
        let expr = random_expr(&config, &mut seed);
        let series = eval(&expr, &alphabet, 3);
        let wfa = thompson(&expr).eliminate_epsilon();
        for word in all_words(&alphabet, 3) {
            assert_eq!(
                wfa.coefficient(&word),
                series.coeff(&word),
                "coefficient mismatch for {expr} at {word}"
            );
        }
    }
}

#[test]
fn decision_procedure_is_reflexive_and_symmetric() {
    let alphabet = vec![Symbol::intern("a"), Symbol::intern("b")];
    let config = ExprGenConfig::new(alphabet).with_target_size(10);
    let mut seed = 0x5715;
    for _ in 0..25 {
        let x = random_expr(&config, &mut seed);
        let y = random_expr(&config, &mut seed);
        assert!(decide_eq(&x, &x).unwrap(), "reflexivity failed for {x}");
        assert_eq!(
            decide_eq(&x, &y).unwrap(),
            decide_eq(&y, &x).unwrap(),
            "symmetry failed for {x}, {y}"
        );
    }
}

#[test]
fn congruence_of_contexts() {
    // If e = f is decided, then C[e] = C[f] for sample contexts.
    let pairs = [("(a b)* a", "a (b a)*"), ("1 + a a*", "a*")];
    for (l, r) in pairs {
        let (l, r) = (e(l), e(r));
        assert!(decide_eq(&l, &r).unwrap());
        let c1l = l.add(&e("b")).star();
        let c1r = r.add(&e("b")).star();
        assert!(decide_eq(&c1l, &c1r).unwrap(), "star context for {l}");
        let c2l = e("b").mul(&l);
        let c2r = e("b").mul(&r);
        assert!(decide_eq(&c2l, &c2r).unwrap(), "product context for {l}");
    }
}

#[test]
fn multiplicity_separations() {
    // The quantitative separations that distinguish NKA from KA, decided
    // as one batch on the shared engine (the repeated subterms hit the
    // compiled-automaton cache).
    let unequal = [
        ("a + a", "a"),
        ("a + a", "a + a + a"),
        ("(a + a)*", "a*"),
        ("a* + a*", "a*"),
        ("(a a)* + a (a a)*", "a* + a*"),
    ];
    let mut engine = Decider::new();
    let pairs: Vec<(Expr, Expr)> = unequal.iter().map(|(l, r)| (e(l), e(r))).collect();
    for ((l, r), verdict) in unequal.iter().zip(engine.decide_all(&pairs)) {
        assert!(!verdict.unwrap(), "{l} vs {r}");
    }
    // … while their KA-shadows (supports) are equal: the same pairs are
    // support-equivalent, so the refutation really is about multiplicity.
    let alphabet = [Symbol::intern("a")];
    for (l, r) in unequal {
        let sl = eval(&e(l), &alphabet, 4);
        let sr = eval(&e(r), &alphabet, 4);
        for word in all_words(&alphabet, 4) {
            assert_eq!(
                sl.coeff(&word) == ExtNat::from(0u64),
                sr.coeff(&word) == ExtNat::from(0u64),
                "support mismatch at {word} for {l} vs {r}"
            );
        }
    }
}

#[test]
fn infinity_support_separations() {
    let unequal = [
        ("1* a", "a"),
        ("1* a", "1* b"),
        ("1* a + b", "a + 1* b"),
        ("(1 + a)*", "a*"),
    ];
    let equal = [
        ("1* 1*", "1*"),
        ("1* + 1*", "1*"),
        ("1* a 1*", "1* (a 1*)"),
        ("(1 + 1)*", "1*"),
        ("(a* )*", "(a* a*)*"),
    ];
    // One batch through the engine; `decide_all` keeps input order, so the
    // expected verdicts line up positionally.
    let mut engine = Decider::new();
    let pairs: Vec<(Expr, Expr)> = unequal
        .iter()
        .chain(&equal)
        .map(|(l, r)| (e(l), e(r)))
        .collect();
    let verdicts = engine.decide_all(&pairs);
    assert_eq!(verdicts.len(), unequal.len() + equal.len());
    for ((l, r), verdict) in unequal.iter().chain(&equal).zip(&verdicts) {
        let expected = !unequal.iter().any(|(ul, ur)| ul == l && ur == r);
        assert_eq!(
            *verdict.as_ref().unwrap(),
            expected,
            "{l} vs {r} (batch order preserved)"
        );
    }
    assert!(engine.stats().compile_misses > 0);
}

#[test]
fn float_ablation_is_consistent_on_benign_inputs() {
    // The f64 arm of the DECIDE-SCALE ablation agrees on well-conditioned
    // inputs (its unsoundness needs adversarial weights; see DESIGN.md §6).
    use nka_quantum::wfa::decide::{decide_eq_with, DecideOptions};
    let opts = DecideOptions {
        float_ablation: true,
        ..DecideOptions::default()
    };
    let cases = [("(a b)* a", "a (b a)*", true), ("a + a", "a", false)];
    for (l, r, expected) in cases {
        assert_eq!(decide_eq_with(&e(l), &e(r), &opts).unwrap(), expected);
    }
}
