//! Theorem 1.1 end to end: NKA equivalence of encodings implies equality
//! of denotational semantics — exercised on randomly generated quantum
//! while-programs.

use nka_quantum::apps::compiler_opt::programs_equal_on_probes;
use nka_quantum::nka::decide_eq;
use nka_quantum::qpath::{action::actions_approx_eq, Action, ExtPosOp};
use nka_quantum::qprog::{EncoderSetting, Program};
use qsim_quantum::{gates, states, Measurement};

/// A small random program generator over one qubit (loops kept shallow so
/// semantics converge fast).
fn random_program(seed: &mut u64, depth: usize) -> Program {
    let mut next = || {
        let mut x = *seed;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *seed = if x == 0 { 0x9E3779B97F4A7C15 } else { x };
        *seed
    };
    let meas = Measurement::computational_basis(2);
    let leaf = |roll: u64| -> Program {
        match roll % 4 {
            0 => Program::unitary("h", &gates::hadamard()),
            1 => Program::unitary("x", &gates::pauli_x()),
            2 => Program::skip(2),
            _ => Program::unitary("t", &gates::t_gate()),
        }
    };
    if depth == 0 {
        return leaf(next());
    }
    match next() % 5 {
        0 | 1 => random_program(seed, depth - 1).then(&random_program(seed, depth - 1)),
        2 => Program::case(
            ["m0", "m1"],
            &meas,
            vec![
                random_program(seed, depth - 1),
                random_program(seed, depth - 1),
            ],
        ),
        3 => Program::while_loop(
            ["m0", "m1"],
            &meas,
            // A Hadamard before the recursive body keeps exit probability
            // bounded away from zero.
            Program::unitary("h", &gates::hadamard()).then(&random_program(seed, depth - 1)),
        ),
        _ => leaf(next()),
    }
}

#[test]
fn theorem_1_1_on_random_program_pairs() {
    let mut seed = 0x7EE1;
    let mut equal_found = 0;
    for _ in 0..30 {
        let p1 = random_program(&mut seed, 2);
        let p2 = random_program(&mut seed, 2);
        let mut setting = EncoderSetting::new(2);
        let e1 = setting.encode(&p1).unwrap();
        let e2 = setting.encode(&p2).unwrap();
        if decide_eq(&e1, &e2).expect("within budget") {
            equal_found += 1;
            assert!(
                programs_equal_on_probes(&p1, &p2, 1e-6),
                "NKA-equal encodings with different semantics:\n  {p1}\n  {p2}"
            );
        }
    }
    // Syntactically identical draws do occur; the test is only vacuous if
    // none did, in which case the deterministic pairs below still bite.
    let _ = equal_found;
}

#[test]
fn theorem_1_1_on_known_equal_pairs() {
    let meas = Measurement::computational_basis(2);
    let h = Program::unitary("h", &gates::hadamard());
    let x = Program::unitary("x", &gates::pauli_x());

    // skip; P ≡ P.
    let lhs = Program::skip(2).then(&h);
    let mut setting = EncoderSetting::new(2);
    let e1 = setting.encode(&lhs).unwrap();
    let e2 = setting.encode(&h).unwrap();
    assert!(decide_eq(&e1, &e2).expect("within budget"));
    assert!(programs_equal_on_probes(&lhs, &h, 1e-9));

    // case M → (P; Q) | (P; R) ≡ … shares the prefix only semantically —
    // NOT an NKA theorem (encodings differ); sanity-check the decision
    // procedure refuses it.
    let case_a = Program::case(["m0", "m1"], &meas, vec![h.then(&x), h.clone()]);
    let mut setting = EncoderSetting::new(2);
    let ea = setting.encode(&case_a).unwrap();
    let eh = setting.encode(&h).unwrap();
    assert!(!decide_eq(&ea, &eh).expect("within budget"));
}

#[test]
fn theorem_4_5_on_random_programs() {
    // Qint(Enc(P)) = ⟨⟦P⟧⟩↑ on the probe family.
    let mut seed = 0x45_45;
    for _ in 0..8 {
        let p = random_program(&mut seed, 2);
        let mut setting = EncoderSetting::new(2);
        let enc = setting.encode(&p).unwrap();
        let int = setting.interpretation();
        let encoded_action = int.action(&enc);
        let denot_action = Action::lift(p.denotation().to_superoperator());
        assert!(
            actions_approx_eq(&encoded_action, &denot_action),
            "Theorem 4.5 failed for {p} (encoding {enc})"
        );
    }
}

#[test]
fn interpretation_handles_divergent_programs() {
    // while M = 1 do skip done diverges on |1⟩: the path-model result is
    // still finite (trace mass is lost, not diverged — partial densities).
    let meas = Measurement::computational_basis(2);
    let w = Program::while_loop(["m0", "m1"], &meas, Program::skip(2));
    let mut setting = EncoderSetting::new(2);
    let enc = setting.encode(&w).unwrap();
    let int = setting.interpretation();
    let out = int
        .action(&enc)
        .apply(&ExtPosOp::from_operator(&states::basis_density(2, 1)));
    assert!(out.is_finite());
    assert!(out.finite_trace() < 1e-8);
}
