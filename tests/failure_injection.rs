//! Failure injection across the verification pipeline: every layer must
//! *reject* wrong artifacts, not merely accept right ones. These tests
//! deliberately break optimizations, starve resource budgets, and feed
//! mismatched derivations, and assert the failure is reported (an error
//! or a `false`), never a silent wrong answer.

use nka_quantum::apps::compiler_opt::programs_equal_on_probes;
use nka_quantum::nka::group::UnitaryGroup;
use nka_quantum::qprog::EncoderSetting;
use nka_quantum::qprog::Program;
use nka_quantum::syntax::Expr;
use nka_quantum::wfa::decide::{decide_eq_with, DecideOptions};
use nkat::qhl::{encode_qhl, HoareTriple, QhlDerivation};
use qsim_quantum::{gates, states, Measurement};

fn e(src: &str) -> Expr {
    src.parse().unwrap()
}

#[test]
fn decision_procedure_rejects_coefficient_near_misses() {
    // (a + a)(a + a) expands to four copies of `a a` — equal to exactly
    // four, unequal to three or five. Support-level reasoning cannot see
    // this; the weighted pipeline must.
    let lhs = e("(a + a) (a + a)");
    let mut engine = nka_quantum::nka::Decider::new();
    assert!(engine
        .decide(&lhs, &e("a a + a a + a a + a a"))
        .expect("within budget"));
    assert!(!engine
        .decide(&lhs, &e("a a + a a + a a"))
        .expect("within budget"));
    assert!(!engine
        .decide(&lhs, &e("a a + a a + a a + a a + a a"))
        .expect("within budget"));
}

#[test]
fn decision_procedure_distinguishes_infinite_multiplicities() {
    // 1* a and (1 + 1)* a both have coefficient ∞ on "a" — equal; but
    // 1* a and a differ (∞ vs 1).
    let mut engine = nka_quantum::nka::Decider::new();
    assert!(engine
        .decide(&e("1* a"), &e("(1 + 1)* a"))
        .expect("within budget"));
    assert!(!engine.decide(&e("1* a"), &e("a")).expect("within budget"));
}

#[test]
fn starved_state_budget_is_an_error_not_a_wrong_answer() {
    let lhs = e("(a + b)* a (a + b) (a + b)");
    let rhs = e("(a + b) (a + b) a (a + b)*");
    let opts = DecideOptions {
        max_dfa_states: 2,
        ..DecideOptions::default()
    };
    // The subset construction cannot fit in 2 states; the procedure must
    // surface the overflow instead of guessing.
    assert!(decide_eq_with(&lhs, &rhs, &opts).is_err());
    // With the default budget the same query resolves fine.
    assert!(decide_eq_with(&lhs, &rhs, &DecideOptions::default()).is_ok());
}

#[test]
fn semantic_validator_rejects_a_wrong_gate_fusion() {
    // Fusing Rz(0.4); Rz(0.3) into Rz(0.8) — a plausible-looking typo —
    // must fail the probe comparison. The Rz phase is sandwiched between
    // Hadamards so it becomes an observable rotation (a bare Rz before a
    // computational-basis measurement would be invisible).
    let h = Program::unitary("h", &gates::hadamard());
    let split = h
        .then(&Program::unitary("rz1", &gates::rz(0.4)))
        .then(&Program::unitary("rz2", &gates::rz(0.3)))
        .then(&h);
    let right = h.then(&Program::unitary("rz12", &gates::rz(0.7))).then(&h);
    let wrong = h
        .then(&Program::unitary("rz_wrong", &gates::rz(0.8)))
        .then(&h);
    assert!(programs_equal_on_probes(&split, &right, 1e-9));
    assert!(!programs_equal_on_probes(&split, &wrong, 1e-7));
}

#[test]
fn semantic_validator_rejects_branch_fusion_of_unequal_branches() {
    // `case M → {H | X}` is NOT `measure; H` — the classical "merge
    // identical branches" intuition must not fire for distinct branches.
    let meas = Measurement::computational_basis(2);
    let h = Program::unitary("h", &gates::hadamard());
    let x = Program::unitary("x", &gates::pauli_x());
    let before = Program::case(["g0", "g1"], &meas, vec![h.clone(), x]);
    let dephase = Program::case(
        ["g0", "g1"],
        &meas,
        vec![Program::skip(2), Program::skip(2)],
    );
    let after = dephase.then(&h);
    assert!(!programs_equal_on_probes(&before, &after, 1e-7));
}

#[test]
fn hoare_triple_with_wrong_postcondition_is_refuted() {
    // {|+⟩⟨+|} H {|1⟩⟨1|} is wrong (H|+⟩ = |0⟩).
    let h = Program::unitary("h", &gates::hadamard());
    let plus = h.run(&states::basis_density(2, 0));
    let wrong = HoareTriple::new(&plus, &h, &states::basis_density(2, 1));
    assert!(!wrong.holds_partial(1e-9));
    let right = HoareTriple::new(&plus, &h, &states::basis_density(2, 0));
    assert!(right.holds_partial(1e-9));
}

#[test]
fn qhl_compiler_rejects_shape_mismatches() {
    // A sequencing rule applied to a non-sequential program must error.
    let h = Program::unitary("h", &gates::hadamard());
    let id = states::basis_density(2, 0);
    let t = HoareTriple::new(&id, &h, &id);
    let seq = QhlDerivation::Seq(
        Box::new(QhlDerivation::Atomic(t.clone())),
        Box::new(QhlDerivation::Atomic(t)),
    );
    let mut setting = EncoderSetting::new(2);
    assert!(encode_qhl(&seq, &h, &mut setting).is_err());
}

#[test]
fn cancellation_certificates_fail_under_wrong_hypotheses() {
    // A proof generated for group G must not check against the
    // hypotheses of a *different* group (missing pairs).
    let mut g = UnitaryGroup::new();
    let (a, _) = g.declare("fa", "fa_inv");
    let (b, _) = g.declare("fb", "fb_inv");
    let proof = g.cancellation_proof(&[a, b]).unwrap();
    proof.check(&g.hypotheses()).unwrap();

    let mut smaller = UnitaryGroup::new();
    smaller.declare("fa", "fa_inv");
    assert!(proof.check(&smaller.hypotheses()).is_err());
}

#[test]
fn probe_comparison_is_tolerance_sensitive_not_blind() {
    // Two programs that differ by a tiny rotation: equal at loose
    // tolerance, distinguished at tight tolerance — the comparison must
    // actually measure, not settle for structural likeness.
    let p1 = Program::unitary("rz", &gates::rz(0.0));
    let p2 = Program::unitary("rz_eps", &gates::rz(1e-6));
    assert!(programs_equal_on_probes(&p1, &p2, 1e-3));
    assert!(!programs_equal_on_probes(&p1, &p2, 1e-9));
}
