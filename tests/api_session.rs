//! The Query API v1 exercised through the umbrella crate: one `Session`
//! across mixed NkaEq/KaEq/Series/Prove queries, with per-query stats
//! deltas, verdict-cache hits, and budget behaviour — the contract the
//! CLI, `batch`, and `serve` layers rely on.

use nka_quantum::api::{ApiError, Query, Session, SessionOptions, Verdict};
use nka_quantum::wfa::decide::DecideOptions;

#[test]
fn mixed_queries_share_one_engine_and_report_deltas() {
    let mut session = Session::new();

    // First NKA query: two fresh compilations, no hits.
    let first = session.run(&Query::nka_eq("(p q)* p", "p (q p)*").unwrap());
    assert_eq!(first.verdict, Verdict::Holds);
    assert_eq!(first.stats_delta.nka_queries, 1);
    assert_eq!(first.stats_delta.compile_misses, 2);
    assert_eq!(first.stats_delta.answer_hits, 0);

    // Same query again: pure verdict-cache hit, nothing recompiled.
    let second = session.run(&Query::nka_eq("(p q)* p", "p (q p)*").unwrap());
    assert_eq!(second.verdict, Verdict::Holds);
    assert_eq!(second.stats_delta.answer_hits, 1);
    assert_eq!(second.stats_delta.compile_misses, 0);
    assert_eq!(second.stats_delta.dfa_misses, 0);

    // KA query over the same expressions: separate verdict cache, but
    // the compiled automata are reused.
    let ka = session.run(&Query::ka_eq("(p q)* p", "p (q p)*").unwrap());
    assert_eq!(ka.verdict, Verdict::Holds);
    assert_eq!(ka.stats_delta.ka_queries, 1);
    assert_eq!(ka.stats_delta.compile_misses, 0);
    assert!(ka.stats_delta.compile_hits >= 2);

    // A series query computes off-engine: its delta is empty.
    let series = session.run(&Query::series("(p q)* p", 3).unwrap());
    assert!(matches!(series.verdict, Verdict::Series { .. }));
    assert_eq!(series.stats_delta.nka_queries, 0);
    assert_eq!(series.stats_delta.compile_misses, 0);

    // Totals accumulate across the whole mix.
    assert_eq!(session.queries_run(), 4);
    let total = session.stats();
    assert_eq!(total.nka_queries, 2);
    assert_eq!(total.ka_queries, 1);
    assert_eq!(total.answer_hits, 1);
    assert_eq!(total.compile_misses, 2);
    assert_eq!(
        session
            .run(&Query::nka_eq("p (q p)*", "(p q)* p").unwrap())
            .stats_delta
            .answer_hits,
        1,
        "symmetric orientation is also a verdict hit"
    );
}

#[test]
fn run_all_preserves_order_and_amortizes() {
    let mut session = Session::new();
    let queries = vec![
        Query::nka_eq("1 + p p*", "p*").unwrap(),
        Query::nka_eq("p + p", "p").unwrap(),
        Query::nka_eq("1 + p p*", "p*").unwrap(), // repeat → hit
    ];
    let responses = session.run_all(&queries);
    assert_eq!(responses.len(), 3);
    assert_eq!(responses[0].verdict, Verdict::Holds);
    assert_eq!(responses[1].verdict, Verdict::Refuted);
    assert_eq!(responses[2].verdict, Verdict::Holds);
    assert_eq!(responses[2].stats_delta.answer_hits, 1);
}

#[test]
fn prove_and_decide_share_the_session_caches() {
    let mut session = Session::new();
    // Refuting a hypothesis-free goal goes through the engine…
    let refuted = session.run(&Query::prove::<&str>("p + p", "p", &[]).unwrap());
    assert_eq!(refuted.verdict, Verdict::Refuted);
    assert_eq!(refuted.stats_delta.nka_queries, 1);
    // …so the matching NkaEq query right after is a cache hit.
    let again = session.run(&Query::nka_eq("p + p", "p").unwrap());
    assert_eq!(again.verdict, Verdict::Refuted);
    assert_eq!(again.stats_delta.answer_hits, 1);
}

#[test]
fn zero_budget_session_reports_budget_exhaustion_not_success() {
    // Regression companion to the engine-level fix: a pathological
    // zero-state budget must surface on the very first (trivial) query.
    let mut session = Session::with_options(
        SessionOptions::builder()
            .decide(DecideOptions {
                max_dfa_states: 0,
                // Forced off so the trivial query reaches the subset
                // construction whose budget this regression test pins
                // (the star-free fast path would otherwise answer it
                // exactly without any DFA states).
                starfree_max_words: 0,
                ..DecideOptions::default()
            })
            .build()
            .unwrap(),
    );
    let resp = session.run(&Query::nka_eq("1", "1").unwrap());
    assert!(
        matches!(resp.verdict, Verdict::BudgetExhausted { .. }),
        "got {:?}",
        resp.verdict
    );
}

#[test]
fn session_prover_bounds_are_honoured() {
    // With a zero expansion budget the search proves nothing, but the
    // engine still classifies the hypothesis-free theorem.
    let mut session = Session::with_options(
        SessionOptions::builder()
            .prove_max_expansions(0)
            .build()
            .unwrap(),
    );
    let resp = session.run(&Query::prove::<&str>("(p q)* p", "p (q p)*", &[]).unwrap());
    assert_eq!(
        resp.verdict,
        Verdict::Exhausted {
            holds_by_decision: Some(true)
        }
    );
    // Under hypotheses the engine is not a sound oracle: status stays open.
    let resp = session.run(&Query::prove("a", "b", &["a = b"]).unwrap());
    assert_eq!(
        resp.verdict,
        Verdict::Exhausted {
            holds_by_decision: None
        }
    );
}

#[test]
fn api_errors_render_carets() {
    let err = Query::series("a ) b", 3).unwrap_err();
    let ApiError::Parse {
        field,
        ref src,
        ref err,
    } = err
    else {
        panic!("expected a parse error, got {err:?}");
    };
    assert_eq!(field, "expr");
    let rendered = err.caret(src);
    assert!(rendered.contains("a ) b\n"), "{rendered}");
    assert!(rendered.contains('^'), "{rendered}");
}
