//! Snapshot warm-start through the real `nka` binary: a batch run with
//! `--snapshot` dumps its verdict caches on exit, a *fresh process*
//! replaying the same golden corpora answers byte-identically (stable
//! projection) while its restored-hit counters move, and every way a
//! snapshot file can rot — truncation, bit flips, a future version
//! stamp, an empty file — degrades to a clean cold start (exit 0,
//! identical answers, a counted load warning) rather than to a wrong
//! answer or a dead stream. This is the process-restart half of the
//! in-session round-trip tests in `nka-core::api`.

use nka_quantum::api::json::Json;
use nka_quantum::api::wire;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const QPROG: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/qprog_25.jsonl");
const ANALYZE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/analyze_20.jsonl");
const OPTIMIZE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/optimize_20.jsonl");

/// A fresh per-test scratch directory (pid-scoped so parallel test
/// binaries cannot collide).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nka-snapwarm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

struct Run {
    code: Option<i32>,
    stdout: String,
    stderr: String,
}

impl Run {
    /// Response lines with `stats`/`micros` stripped — the
    /// byte-comparable projection (`wire::stable_response_projection`).
    fn projected(&self) -> Vec<String> {
        self.stdout
            .lines()
            .map(wire::stable_response_projection)
            .collect()
    }

    /// The single `--stats --json` object on stderr.
    fn stats(&self) -> Json {
        let line = self
            .stderr
            .lines()
            .find(|line| line.starts_with('{'))
            .unwrap_or_else(|| panic!("no JSON stats line on stderr:\n{}", self.stderr));
        Json::parse(line).expect("stats JSON parses")
    }

    fn snapshot_stat(&self, key: &str) -> i64 {
        self.stats()
            .get("snapshot")
            .unwrap_or_else(|| panic!("no snapshot section:\n{}", self.stderr))
            .get(key)
            .and_then(Json::as_i64)
            .unwrap_or_else(|| panic!("no snapshot.{key} counter:\n{}", self.stderr))
    }
}

/// `nka --stats --json [--snapshot FILE] [--jobs N] batch CORPUS`.
fn run_batch_jobs(corpus: &str, snapshot: Option<&Path>, jobs: Option<usize>) -> Run {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_nka"));
    cmd.args(["--stats", "--json"]);
    if let Some(path) = snapshot {
        cmd.arg("--snapshot").arg(path);
    }
    if let Some(n) = jobs {
        cmd.arg("--jobs").arg(n.to_string());
    }
    cmd.arg("batch").arg(corpus);
    let output = cmd.output().expect("nka binary runs");
    Run {
        code: output.status.code(),
        stdout: String::from_utf8(output.stdout).expect("stdout is UTF-8"),
        stderr: String::from_utf8(output.stderr).expect("stderr is UTF-8"),
    }
}

/// `nka --stats --json [--snapshot FILE] batch CORPUS`.
fn run_batch(corpus: &str, snapshot: Option<&Path>) -> Run {
    run_batch_jobs(corpus, snapshot, None)
}

/// The snapshot header layout pinned by `nka_core::snapshot`: 8 magic
/// bytes, a little-endian u32 version, a little-endian u64 checksum,
/// then the body.
const HEADER_LEN: usize = 8 + 4 + 8;

#[test]
fn warm_restart_replays_qprog_corpus_identically_with_restored_hits() {
    let dir = temp_dir("qprog");
    let snap = dir.join("warm.nkasnap");

    // Cold pass: no file yet (an info note, not a warning), dumps on
    // exit.
    let cold = run_batch(QPROG, Some(&snap));
    assert_eq!(cold.code, Some(0), "{}", cold.stderr);
    assert!(snap.exists(), "exit dump must write the snapshot");
    assert_eq!(cold.snapshot_stat("load_warnings"), 0, "{}", cold.stderr);
    assert!(cold.snapshot_stat("dumps") >= 1, "{}", cold.stderr);

    // Warm pass in a fresh process: same answers, restored hits move.
    let warm = run_batch(QPROG, Some(&snap));
    assert_eq!(warm.code, Some(0), "{}", warm.stderr);
    assert_eq!(
        cold.projected(),
        warm.projected(),
        "verdict projections must be byte-identical across the restart"
    );
    assert!(
        warm.snapshot_stat("restored_entries") > 0,
        "{}",
        warm.stderr
    );
    assert!(
        warm.snapshot_stat("snapshot_hits") > 0,
        "the replay must hit the restored verdict caches: {}",
        warm.stderr
    );
    assert!(
        warm.stats()
            .get("snapshot")
            .and_then(|s| s.get("age_secs"))
            .and_then(Json::as_i64)
            .is_some(),
        "a loaded snapshot reports its age: {}",
        warm.stderr
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_restart_replays_analyze_corpus_with_certificate_hits() {
    let dir = temp_dir("analyze");
    let snap = dir.join("warm.nkasnap");

    let cold = run_batch(ANALYZE, Some(&snap));
    assert_eq!(cold.code, Some(0), "{}", cold.stderr);

    let warm = run_batch(ANALYZE, Some(&snap));
    assert_eq!(warm.code, Some(0), "{}", warm.stderr);
    assert_eq!(cold.projected(), warm.projected());
    assert!(
        warm.snapshot_stat("cert_snapshot_hits") > 0,
        "the analyze replay must hit restored certificates: {}",
        warm.stderr
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `batch --jobs N --snapshot FILE` (previously rejected as "parallel
/// workers are transient"): every chunk's workers warm-start from the
/// loaded entries and drain their caches into one shared merge builder,
/// written once at end of stream. The dumped file must `snapshot
/// verify`, and a fresh parallel replay must hit the restored caches —
/// on the optimizer corpus, so optimizer-final `prog_eq` verdicts are
/// shown to ride the existing verdict/cert caches across a restart.
#[test]
fn parallel_batch_merges_worker_snapshots_and_replays_warm() {
    let dir = temp_dir("jobs");
    let snap = dir.join("warm.nkasnap");

    // Cold parallel pass: 4 workers per chunk, one merged dump.
    let cold = run_batch_jobs(OPTIMIZE, Some(&snap), Some(4));
    assert_eq!(cold.code, Some(0), "{}", cold.stderr);
    assert!(snap.exists(), "parallel batch must write the merged dump");
    assert!(cold.stderr.contains("snapshot: dumped"), "{}", cold.stderr);
    assert!(cold.snapshot_stat("dumps") >= 1, "{}", cold.stderr);

    // The merged dump is a fully valid snapshot file.
    let verify = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["snapshot", "verify"])
        .arg(&snap)
        .output()
        .expect("nka snapshot verify runs");
    assert_eq!(
        verify.status.code(),
        Some(0),
        "merged dump failed verification: {}",
        String::from_utf8_lossy(&verify.stderr)
    );

    // Warm parallel pass in a fresh process: byte-identical stable
    // projections, and the restored caches actually get hit (the
    // optimizer's final certifications are cert-cache lookups).
    let warm = run_batch_jobs(OPTIMIZE, Some(&snap), Some(4));
    assert_eq!(warm.code, Some(0), "{}", warm.stderr);
    assert_eq!(
        cold.projected(),
        warm.projected(),
        "verdict projections must be byte-identical across the restart"
    );
    assert!(
        warm.snapshot_stat("restored_entries") > 0,
        "{}",
        warm.stderr
    );
    assert!(
        warm.snapshot_stat("snapshot_hits") + warm.snapshot_stat("cert_snapshot_hits") > 0,
        "the parallel replay must hit the restored caches: {}",
        warm.stderr
    );
    // The warm pass also re-dumps (merge of restored + fresh entries).
    assert!(warm.snapshot_stat("dumps") >= 1, "{}", warm.stderr);

    // Sequential and parallel answers agree warm, too.
    let seq = run_batch_jobs(OPTIMIZE, Some(&snap), None);
    assert_eq!(seq.code, Some(0), "{}", seq.stderr);
    assert_eq!(warm.projected(), seq.projected());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every corruption mode loads as a clean cold start: exit 0, the
/// stream stays alive and answers every line byte-identically to a
/// snapshot-free run, and the failure is *counted* (one load warning)
/// rather than fatal.
#[test]
fn corrupt_snapshots_degrade_to_cold_starts_not_wrong_answers() {
    let dir = temp_dir("corrupt");
    let snap = dir.join("warm.nkasnap");
    let baseline = run_batch(QPROG, None);
    assert_eq!(baseline.code, Some(0), "{}", baseline.stderr);

    // A valid dump to corrupt per-case.
    let seeded = run_batch(QPROG, Some(&snap));
    assert_eq!(seeded.code, Some(0), "{}", seeded.stderr);
    let good = std::fs::read(&snap).expect("dumped snapshot readable");
    assert!(good.len() > HEADER_LEN, "dump is non-trivial");

    let truncated = good[..good.len() / 2].to_vec();
    let mut flipped = good.clone();
    flipped[HEADER_LEN + 4] ^= 0x40;
    let mut future = good.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    let cases: [(&str, Vec<u8>); 4] = [
        ("truncated", truncated),
        ("bit-flipped", flipped),
        ("version-bumped", future),
        ("zero-length", Vec::new()),
    ];

    for (name, bytes) in cases {
        let file = dir.join(format!("{name}.nkasnap"));
        std::fs::write(&file, &bytes).expect("write corrupt snapshot");
        let run = run_batch(QPROG, Some(&file));
        assert_eq!(run.code, Some(0), "{name}: {}", run.stderr);
        assert_eq!(
            baseline.projected(),
            run.projected(),
            "{name}: a failed load must not change any answer"
        );
        assert!(
            run.stderr.contains("starting cold"),
            "{name}: the degradation must be reported: {}",
            run.stderr
        );
        assert_eq!(
            run.snapshot_stat("load_warnings"),
            1,
            "{name}: {}",
            run.stderr
        );
        assert_eq!(
            run.snapshot_stat("restored_entries"),
            0,
            "{name}: nothing may be restored from a bad file: {}",
            run.stderr
        );
        // The exit dump replaces the rotten file with a valid one — the
        // restart loop self-heals.
        let verify = Command::new(env!("CARGO_BIN_EXE_nka"))
            .args(["snapshot", "verify"])
            .arg(&file)
            .output()
            .expect("nka snapshot verify runs");
        assert_eq!(verify.status.code(), Some(0), "{name}: dump did not heal");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The offline surface: `snapshot dump` builds a file from a corpus,
/// `inspect --json` reports its header and entry counts, `verify`
/// accepts it and rejects rot with exit 1.
#[test]
fn snapshot_subcommands_dump_inspect_and_verify() {
    let dir = temp_dir("subcmd");
    let snap = dir.join("offline.nkasnap");

    let dump = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["snapshot", "dump"])
        .arg(&snap)
        .arg(QPROG)
        .output()
        .expect("nka snapshot dump runs");
    assert_eq!(
        dump.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&dump.stderr)
    );

    let inspect = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["--json", "snapshot", "inspect"])
        .arg(&snap)
        .output()
        .expect("nka snapshot inspect runs");
    assert_eq!(inspect.status.code(), Some(0));
    let value = Json::parse(String::from_utf8(inspect.stdout).expect("UTF-8").trim())
        .expect("inspect --json is one JSON object");
    assert_eq!(value.get("v").and_then(Json::as_i64), Some(1));
    assert!(value.get("entries").and_then(Json::as_i64) > Some(0));
    assert!(value.get("nka_verdicts").and_then(Json::as_i64).is_some());
    assert!(value.get("certs").and_then(Json::as_i64).is_some());

    let verify = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["snapshot", "verify"])
        .arg(&snap)
        .output()
        .expect("nka snapshot verify runs");
    assert_eq!(verify.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&verify.stdout).contains("ok:"));

    let mut bytes = std::fs::read(&snap).expect("snapshot readable");
    let len = bytes.len();
    bytes[len - 1] ^= 0xff;
    std::fs::write(&snap, &bytes).expect("write corrupted snapshot");
    let reject = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["snapshot", "verify"])
        .arg(&snap)
        .output()
        .expect("nka snapshot verify runs");
    assert_eq!(reject.status.code(), Some(1), "rot must be rejected");
    assert!(String::from_utf8_lossy(&reject.stderr).contains("invalid snapshot"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm-start through the stdin `serve` loop: the same snapshot file
/// boots the interactive loop warm, and the stream both answers
/// identically and reports its version on every line.
#[test]
fn serve_stdin_boots_warm_from_a_snapshot() {
    let dir = temp_dir("serve");
    let snap = dir.join("warm.nkasnap");
    let seeded = run_batch(QPROG, Some(&snap));
    assert_eq!(seeded.code, Some(0), "{}", seeded.stderr);

    let input = std::fs::read_to_string(QPROG).expect("corpus readable");
    let mut child = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["--stats", "--json"])
        .arg("--snapshot")
        .arg(&snap)
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("nka serve runs");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write serve input");
    let output = child.wait_with_output().expect("serve completes");
    let run = Run {
        code: output.status.code(),
        stdout: String::from_utf8(output.stdout).expect("UTF-8"),
        stderr: String::from_utf8(output.stderr).expect("UTF-8"),
    };
    assert_eq!(run.code, Some(0), "{}", run.stderr);
    assert_eq!(seeded.projected(), run.projected());
    assert!(run.snapshot_stat("snapshot_hits") > 0, "{}", run.stderr);
    for line in run.stdout.lines() {
        assert!(
            line.starts_with("{\"v\":1,"),
            "response lines lead with the wire version: {line}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
