//! Property-based tests (proptest) on the core algebraic structures:
//! scalar semirings, exact rationals, expression syntax, canonical forms,
//! and the truncated power-series model.

use nka_quantum::nka::semiring_nf::{canon, semiring_equal};
use nka_quantum::semiring::{BigInt, BigRational, ExtNat, Semiring, StarSemiring};
use nka_quantum::series::eval;
use nka_quantum::syntax::{Expr, Symbol};
use proptest::prelude::*;

fn extnat_strategy() -> impl Strategy<Value = ExtNat> {
    prop_oneof![
        (0u64..1_000_000).prop_map(ExtNat::from),
        Just(ExtNat::INFINITY),
    ]
}

proptest! {
    #[test]
    fn extnat_semiring_laws(a in extnat_strategy(), b in extnat_strategy(), c in extnat_strategy()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b * c), (a * b) * c);
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + ExtNat::zero(), a);
        prop_assert_eq!(a * ExtNat::one(), a);
        prop_assert_eq!(a * ExtNat::zero(), ExtNat::zero());
    }

    #[test]
    fn extnat_star_satisfies_unfolding(a in extnat_strategy()) {
        prop_assert_eq!(a.star(), ExtNat::one() + a * a.star());
    }

    #[test]
    fn bigint_arithmetic_matches_i128(x in -1_000_000_000_000i128..1_000_000_000_000, y in -1_000_000_000_000i128..1_000_000_000_000) {
        let (bx, by) = (BigInt::from(x), BigInt::from(y));
        prop_assert_eq!((&bx + &by).to_i128(), Some(x + y));
        prop_assert_eq!((&bx - &by).to_i128(), Some(x - y));
        prop_assert_eq!((&bx * &by).to_i128(), Some(x * y));
        if y != 0 {
            let (q, r) = bx.div_rem(&by);
            prop_assert_eq!(q.to_i128(), Some(x / y));
            prop_assert_eq!(r.to_i128(), Some(x % y));
        }
    }

    #[test]
    fn bigint_display_roundtrip(x in any::<i128>()) {
        let b = BigInt::from(x);
        let parsed: BigInt = b.to_string().parse().unwrap();
        prop_assert_eq!(parsed, b);
    }

    #[test]
    fn rational_field_laws(
        an in -10_000i64..10_000, ad in 1i64..100,
        bn in -10_000i64..10_000, bd in 1i64..100,
        cn in -10_000i64..10_000, cd in 1i64..100,
    ) {
        let a = BigRational::new(an.into(), ad.into());
        let b = BigRational::new(bn.into(), bd.into());
        let c = BigRational::new(cn.into(), cd.into());
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
        }
        prop_assert_eq!(&a - &a, BigRational::zero());
    }
}

/// A recursive strategy for NKA expressions over {a, b}.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::zero()),
        Just(Expr::one()),
        Just(Expr::atom(Symbol::intern("a"))),
        Just(Expr::atom(Symbol::intern("b"))),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.add(&r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.mul(&r)),
            inner.prop_map(|x| x.star()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn expr_display_parse_roundtrip(e in expr_strategy()) {
        let printed = e.to_string();
        let reparsed: Expr = printed.parse().unwrap();
        prop_assert_eq!(reparsed, e);
    }

    #[test]
    fn simplified_is_semiring_equal_modulo_star_units(e in expr_strategy()) {
        // `simplified` uses unit laws and 0* = 1; the latter leaves the
        // semiring fragment, so compare through the series model instead.
        let alphabet = [Symbol::intern("a"), Symbol::intern("b")];
        let s1 = eval(&e, &alphabet, 3);
        let s2 = eval(&e.simplified(), &alphabet, 3);
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn canonical_form_roundtrips(e in expr_strategy()) {
        let poly = canon(&e);
        prop_assert_eq!(&canon(&poly.to_expr(true)), &poly);
        prop_assert_eq!(&canon(&poly.to_expr(false)), &poly);
        prop_assert!(semiring_equal(&e, &poly.to_expr(true)));
    }

    #[test]
    fn series_semiring_laws(e1 in expr_strategy(), e2 in expr_strategy(), e3 in expr_strategy()) {
        let alphabet = [Symbol::intern("a"), Symbol::intern("b")];
        let len = 3;
        let (s1, s2, s3) = (
            eval(&e1, &alphabet, len),
            eval(&e2, &alphabet, len),
            eval(&e3, &alphabet, len),
        );
        prop_assert_eq!(s1.add(&s2), s2.add(&s1));
        prop_assert_eq!(s1.add(&s2).add(&s3), s1.add(&s2.add(&s3)));
        prop_assert_eq!(s1.mul(&s2).mul(&s3), s1.mul(&s2.mul(&s3)));
        prop_assert_eq!(s1.mul(&s2.add(&s3)), s1.mul(&s2).add(&s1.mul(&s3)));
    }

    #[test]
    fn series_star_satisfies_fixed_point(e in expr_strategy()) {
        let alphabet = [Symbol::intern("a"), Symbol::intern("b")];
        let f = eval(&e, &alphabet, 3);
        let star = f.star();
        // f* = 1 + f·f*.
        let unfolded = nka_quantum::series::Series::one(3).add(&f.mul(&star));
        prop_assert_eq!(star, unfolded);
    }
}
