//! Perf smoke for the tiered-equivalence pipeline: the ISSUE's
//! acceptance bound — a 14-gate loop-free equal `prog_eq` pair on a
//! fresh session decides well under 50 ms — plus proof (via the stats
//! delta) that the answer actually came from the star-free fast path,
//! so a silently disabled or regressed fast path fails this test
//! rather than just slowing CI down.
//!
//! The bound is generous against the bench median (~60 µs in release,
//! `decide/prog_eq_loop_free/equal_fast/14`) and far below the generic
//! pipeline (~340 ms), so it separates the two tiers cleanly without
//! being flaky on loaded CI runners. Under the debug profile the bound
//! is scaled up; the release run in CI is the gating one.

use nka_quantum::{Query, Session, Verdict};
use std::time::{Duration, Instant};

/// The analyzer's acceptance bound: a full default-pass `analyze` of
/// the same 14-gate loop-free program completes in well under 5 ms on
/// a warm session. The warm-up query is a *different* program, so the
/// timed run still performs its Tier B semantic checks on the engine
/// (certificate-cache cold) — the bound holds because loop-free checks
/// ride the star-free fast path, not because the answer was memoized.
#[test]
fn fourteen_gate_analyze_is_under_five_millis_warm() {
    let mut session = Session::new();
    let warmup = Query::analyze("qubits 2; h q0; cnot q0 q1", &[] as &[&str]).unwrap();
    session.run(&warmup);
    let decides_before = session.analysis_stats().tier_b_decides;

    let query = Query::analyze(&fourteen_gates(), &[] as &[&str]).unwrap();
    let start = Instant::now();
    let resp = session.run(&query);
    let elapsed = start.elapsed();

    assert!(
        matches!(resp.verdict, Verdict::Analysis { .. }),
        "expected an Analysis verdict, got {:?}",
        resp.verdict
    );
    assert!(
        session.analysis_stats().tier_b_decides > decides_before,
        "the timed analyze ran no Tier B engine check — bound is vacuous"
    );
    assert_eq!(session.analysis_stats().cert_cache_hits, 0);

    let bound = if cfg!(debug_assertions) {
        Duration::from_millis(200)
    } else {
        Duration::from_millis(5)
    };
    assert!(
        elapsed < bound,
        "14-gate loop-free analyze took {elapsed:?} (bound {bound:?})"
    );
}

/// A deterministic loop-free 14-gate two-qubit program (same shape as
/// the `decide/prog_eq_loop_free` bench subject).
fn fourteen_gates() -> String {
    const G: [&str; 5] = ["h q0", "x q1", "cnot q0 q1", "s q0", "t q1"];
    let body = (0..14)
        .map(|i| G[i % G.len()])
        .collect::<Vec<_>>()
        .join("; ");
    format!("qubits 2; {body}")
}

#[test]
fn fourteen_gate_loop_free_equal_pair_is_fast_path_and_fast() {
    let p = fourteen_gates();
    let query = Query::prog_eq(&p, &format!("{p}; skip")).expect("well-formed");
    let mut session = Session::new();

    let start = Instant::now();
    let resp = session.run(&query);
    let elapsed = start.elapsed();

    assert!(
        matches!(resp.verdict, Verdict::ProgEq { holds: true, .. }),
        "expected the skip-padded pair to hold, got {:?}",
        resp.verdict
    );
    assert!(
        resp.stats_delta.starfree_hits + resp.stats_delta.prefix_hits >= 1,
        "loop-free pair was not answered by the star-free fast path: {:?}",
        resp.stats_delta
    );

    let bound = if cfg!(debug_assertions) {
        Duration::from_millis(2000)
    } else {
        Duration::from_millis(50)
    };
    assert!(
        elapsed < bound,
        "14-gate loop-free equal pair took {elapsed:?} (bound {bound:?})"
    );
}
