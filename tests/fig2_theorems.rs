//! FIG2A/FIG2B — every derivable formula of Figure 2 as (1) a checked
//! proof object, (2) a decision-procedure fact, and (3) a law of the
//! truncated power-series model.

use nka_quantum::nka::{theorems, Decider, Judgment, Proof};
use nka_quantum::series::eval;
use nka_quantum::syntax::{Expr, Symbol};
use std::cell::RefCell;

fn e(src: &str) -> Expr {
    src.parse().unwrap()
}

thread_local! {
    /// One shared engine per test thread: theorems reuse subterms heavily,
    /// so the compiled-automaton cache pays off across assertions.
    static ENGINE: RefCell<Decider> = RefCell::new(Decider::new());
}

fn decide_eq(l: &Expr, r: &Expr) -> bool {
    ENGINE.with(|engine| engine.borrow_mut().decide(l, r).expect("within budget"))
}

fn assert_equation_everywhere(lhs: &str, rhs: &str, proof: &Proof) {
    let (l, r) = (e(lhs), e(rhs));
    // 1. Proof object.
    let j = proof.check_closed().unwrap_or_else(|err| {
        panic!("{lhs} = {rhs}: proof failed: {err}");
    });
    assert_eq!(j, Judgment::Eq(l, r), "{lhs} = {rhs}");
    // 2. Decision procedure.
    assert!(
        decide_eq(&l, &r),
        "decision procedure rejects {lhs} = {rhs}"
    );
    // 3. Truncated series oracle.
    let alphabet: Vec<Symbol> = l.atoms().union(&r.atoms()).copied().collect();
    assert_eq!(
        eval(&l, &alphabet, 4),
        eval(&r, &alphabet, 4),
        "series differ for {lhs} = {rhs}"
    );
}

#[test]
fn fixed_point_right() {
    assert_equation_everywhere("1 + p p*", "p*", &theorems::fixed_point_right(&e("p")));
}

#[test]
fn fixed_point_left() {
    assert_equation_everywhere("1 + p* p", "p*", &theorems::fixed_point_left(&e("p")));
}

#[test]
fn product_star() {
    assert_equation_everywhere(
        "1 + p (q p)* q",
        "(p q)*",
        &theorems::product_star(&e("p"), &e("q")),
    );
}

#[test]
fn sliding() {
    assert_equation_everywhere("(p q)* p", "p (q p)*", &theorems::sliding(&e("p"), &e("q")));
}

#[test]
fn denesting_left() {
    assert_equation_everywhere(
        "(p + q)*",
        "(p* q)* p*",
        &theorems::denesting_left(&e("p"), &e("q")),
    );
}

#[test]
fn denesting_right() {
    assert_equation_everywhere(
        "(p + q)*",
        "p* (q p*)*",
        &theorems::denesting_right(&e("p"), &e("q")),
    );
}

#[test]
fn positivity() {
    let proof = theorems::positivity(&e("p"));
    assert_eq!(proof.check_closed().unwrap().to_string(), "0 ≤ p");
}

#[test]
fn unrolling() {
    assert_equation_everywhere("(p p)* (1 + p)", "p*", &theorems::unrolling(&e("p")));
}

#[test]
fn monotone_star_is_a_horn_theorem() {
    let hyps = [Judgment::Le(e("p"), e("q"))];
    let proof = theorems::monotone_star(&e("p"), &e("q"), Proof::Hyp(0), &hyps);
    assert_eq!(proof.check(&hyps).unwrap().to_string(), "p* ≤ q*");
}

#[test]
fn swap_star_is_a_horn_theorem() {
    let hyps = [Judgment::Eq(e("p q"), e("q p"))];
    let proof = theorems::swap_star(&e("p"), &e("q"), Proof::Hyp(0), &hyps);
    assert_eq!(proof.check(&hyps).unwrap().to_string(), "p* q = q p*");
    // Semantically: instantiate p, q with commuting words and compare.
    let inst_l = e("(a a)* a");
    let inst_r = e("a (a a)*");
    assert!(decide_eq(&inst_l, &inst_r));
}

#[test]
fn star_rewrite_is_a_horn_theorem() {
    let hyps = [Judgment::Eq(e("p q"), e("r p"))];
    let proof = theorems::star_rewrite(&e("p"), &e("q"), &e("r"), Proof::Hyp(0), &hyps);
    assert_eq!(proof.check(&hyps).unwrap().to_string(), "p q* = r* p");
}

#[test]
fn theorems_hold_under_random_instantiation() {
    use nka_quantum::syntax::{random_expr, ExprGenConfig};
    let alphabet = vec![Symbol::intern("a"), Symbol::intern("b")];
    let config = ExprGenConfig::new(alphabet).with_target_size(5);
    let mut seed = 0xF162;
    for _ in 0..8 {
        let p = random_expr(&config, &mut seed);
        let q = random_expr(&config, &mut seed);
        theorems::fixed_point_right(&p).check_closed().unwrap();
        theorems::sliding(&p, &q).check_closed().unwrap();
        theorems::product_star(&p, &q).check_closed().unwrap();
        theorems::denesting_left(&p, &q).check_closed().unwrap();
        theorems::denesting_right(&p, &q).check_closed().unwrap();
        theorems::unrolling(&p).check_closed().unwrap();
        theorems::positivity(&p).check_closed().unwrap();
    }
}

#[test]
fn idempotence_is_not_provable_semantics() {
    // The deleted axiom really is deleted: its instances fail in the model.
    assert!(!decide_eq(&e("p + p"), &e("p")));
    assert!(!decide_eq(&e("(p + 1)*"), &e("p*")));
    assert!(!decide_eq(&e("p* p*"), &e("p*")));
}
