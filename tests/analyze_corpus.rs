//! The golden static-analysis corpus, end to end: the checked-in
//! 20-program `analyze` fixture must decode, answer with its recorded
//! findings (pass list in span order, warning count) on an in-process
//! `Session`, replay every embedded Tier B certificate on a *fresh*
//! session, and produce byte-identical output through the real
//! `nka batch --json` binary — sequentially and sharded over
//! `--jobs 4` workers (the determinism contract certificate stats are
//! designed around: every Tier B check pair in the fixture is
//! encoding-distinct, so worker layout cannot change the recorded
//! engine deltas).

use nka_quantum::api::json::Json;
use nka_quantum::api::{wire, Query, Session, Verdict};
use std::process::Command;

const CORPUS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/analyze_20.jsonl");

/// `(query, expected pass list, expected warning count)` per corpus
/// line, via the wire decoder (which ignores the `expect*` keys) plus
/// a raw-JSON read of them.
fn load_corpus() -> Vec<(Query, Vec<String>, usize)> {
    let text = std::fs::read_to_string(CORPUS).expect("fixture readable");
    text.lines()
        .filter_map(|line| {
            let query = wire::decode_request(line)
                .unwrap_or_else(|err| panic!("bad fixture line {line:?}: {err}"))?;
            let value = Json::parse(line).expect("fixture line is JSON");
            assert_eq!(
                value.get("expect").and_then(Json::as_str),
                Some("analysis"),
                "fixture line lacks expect: {line}"
            );
            let passes: Vec<String> = value
                .get("expect_passes")
                .and_then(Json::as_array)
                .unwrap_or_else(|| panic!("fixture line lacks expect_passes: {line}"))
                .iter()
                .map(|p| p.as_str().expect("pass name is a string").to_owned())
                .collect();
            let warnings = value
                .get("expect_warnings")
                .and_then(Json::as_i64)
                .unwrap_or_else(|| panic!("fixture line lacks expect_warnings: {line}"))
                as usize;
            Some((query, passes, warnings))
        })
        .collect()
}

#[test]
fn fixture_has_20_analyze_queries_covering_six_pass_kinds() {
    let corpus = load_corpus();
    assert_eq!(corpus.len(), 20);
    assert!(corpus
        .iter()
        .all(|(q, _, _)| matches!(q, Query::Analyze { .. })));
    let mut kinds: Vec<&str> = corpus
        .iter()
        .flat_map(|(_, passes, _)| passes.iter().map(String::as_str))
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert!(
        kinds.len() >= 6,
        "corpus covers only {} pass kinds: {kinds:?}",
        kinds.len()
    );
    // Both Tier A and Tier B findings are represented.
    for required in ["dead_branch", "unused_qubit", "constant_guard", "peephole"] {
        assert!(kinds.contains(&required), "no {required} finding");
    }
    // Both verdict polarities: some lines warn, some are info-only.
    assert!(corpus.iter().any(|(_, _, w)| *w > 0));
    assert!(corpus.iter().any(|(_, _, w)| *w == 0));
}

/// The in-process oracle: one warm session must answer every corpus
/// line with its recorded pass list and warning count, and every
/// embedded Tier B certificate must replay to `holds` on a fresh
/// session.
#[test]
fn oracle_session_answers_the_recorded_findings_and_certificates_replay() {
    let corpus = load_corpus();
    let mut session = Session::new();
    let mut replayed = 0;
    for (i, (query, expect_passes, expect_warnings)) in corpus.iter().enumerate() {
        let resp = session.run(query);
        let Verdict::Analysis { findings } = &resp.verdict else {
            panic!("line {}: expected an Analysis verdict", i + 1);
        };
        let passes: Vec<&str> = findings.iter().map(|f| f.pass).collect();
        assert_eq!(&passes, expect_passes, "line {} findings drifted", i + 1);
        let warnings = findings
            .iter()
            .filter(|f| f.severity == nka_quantum::qprog::Severity::Warning)
            .count();
        assert_eq!(warnings, *expect_warnings, "line {} warnings", i + 1);
        // Findings are reported in span order (the determinism the
        // --jobs byte-diff relies on).
        assert!(
            findings.windows(2).all(|w| w[0].span.0 <= w[1].span.0),
            "line {} findings unsorted",
            i + 1
        );
        for finding in findings {
            let Some(cert) = &finding.certificate else {
                continue;
            };
            assert_eq!(cert.expect, "holds");
            let replay = Query::prog_eq(&cert.p, &cert.q)
                .unwrap_or_else(|err| panic!("line {}: bad certificate: {err}", i + 1));
            let verdict = Session::new().run(&replay).verdict;
            assert!(
                matches!(verdict, Verdict::ProgEq { holds: true, .. }),
                "line {}: certificate failed to replay: {} vs {}",
                i + 1,
                cert.p,
                cert.q
            );
            replayed += 1;
        }
    }
    assert!(replayed >= 5, "only {replayed} certificates replayed");
}

/// Runs `nka batch --json` over the corpus with the given extra args;
/// returns the stable projection of each output line (per-execution
/// `stats`/`micros` dropped).
fn batch_lines(extra: &[&str]) -> Vec<String> {
    let output = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(extra.iter().copied().chain(["batch", "--json", CORPUS]))
        .output()
        .expect("nka binary runs");
    assert!(
        output.status.success(),
        "batch exited {:?}: {}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("UTF-8 output");
    stdout
        .lines()
        .map(|line| {
            let value = Json::parse(line)
                .unwrap_or_else(|err| panic!("unparseable output line ({err}): {line}"));
            let Json::Obj(fields) = &value else {
                panic!("response is not an object: {line}")
            };
            fields
                .iter()
                .filter(|(k, _)| k != "stats" && k != "micros")
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect()
}

#[test]
fn nka_batch_matches_the_oracle_sequentially_and_parallel() {
    let corpus = load_corpus();
    let sequential = batch_lines(&[]);
    assert_eq!(sequential.len(), 20, "one response line per query");
    for (i, (line, (_, expect_passes, _))) in sequential.iter().zip(&corpus).enumerate() {
        assert!(
            line.contains("verdict=\"analysis\""),
            "line {}: {line}",
            i + 1
        );
        for pass in expect_passes {
            assert!(
                line.contains(pass.as_str()),
                "line {} lacks {pass}: {line}",
                i + 1
            );
        }
    }
    // --jobs 4 must be byte-identical on the stable projection — this
    // includes every certificate's embedded engine-stats delta, so a
    // worker-layout-dependent cache interaction would fail here.
    let parallel = batch_lines(&["--jobs", "4"]);
    assert_eq!(parallel.len(), 20);
    for (i, (seq, par)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(
            seq,
            par,
            "line {}: --jobs 4 diverged from sequential",
            i + 1
        );
    }
}
