//! The `--stats` reporting contract of the `nka` binary: the default
//! human format keeps its historical free-text lines (now with latency
//! histograms), and `--stats --json` replaces them with exactly one
//! machine-readable JSON object carrying the documented field names —
//! engine counters (including the tiered-equivalence
//! `starfree_hits`/`prefix_hits`/`fastpath_fallbacks`), arena figures,
//! and per-op log-bucketed histograms.

use nka_quantum::api::json::Json;
use std::process::Command;

const BATCH_FILE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/batch_50.jsonl");
const QPROG_FILE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/qprog_25.jsonl");

fn run_stats(json: bool) -> String {
    let mut args = vec!["--stats"];
    if json {
        args.push("--json");
    }
    args.extend(["batch", BATCH_FILE]);
    let output = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(&args)
        .output()
        .expect("nka runs");
    assert!(output.status.success(), "batch over the fixture succeeds");
    String::from_utf8(output.stderr).expect("stderr is UTF-8")
}

#[test]
fn human_stats_keep_the_historical_lines_and_add_latency() {
    let stderr = run_stats(false);
    for needle in [
        "engine stats: ",
        "fast-path stats: ",
        "expr stats: ",
        "arena stats: ",
        "latency stats: 50 queries",
        " q/s)",
        "  nka_eq: n=",
        "p50=",
        "p99=",
        "p999=",
    ] {
        assert!(stderr.contains(needle), "missing {needle:?} in:\n{stderr}");
    }
    assert!(
        !stderr.trim_start().starts_with('{'),
        "human format must stay the default:\n{stderr}"
    );
}

#[test]
fn json_stats_are_one_parseable_object_with_the_contract_fields() {
    let stderr = run_stats(true);
    // Exactly one stats object, replacing the free-text lines entirely.
    let json_lines: Vec<&str> = stderr
        .lines()
        .filter(|line| line.starts_with('{'))
        .collect();
    assert_eq!(
        json_lines.len(),
        1,
        "expected exactly one JSON stats line:\n{stderr}"
    );
    assert!(
        !stderr.contains("engine stats:"),
        "--json must replace the free-text lines:\n{stderr}"
    );

    let value = Json::parse(json_lines[0]).expect("stats JSON parses");
    assert!(value.get("queries").and_then(Json::as_i64) >= Some(50));
    assert!(value.get("qps").and_then(Json::as_i64).is_some());

    let engine = value.get("engine").expect("engine section");
    for key in [
        "nka_queries",
        "ka_queries",
        "answer_hits",
        "compile_hits",
        "compile_misses",
        "dfa_hits",
        "dfa_misses",
        "starfree_hits",
        "prefix_hits",
        "fastpath_fallbacks",
    ] {
        assert!(
            engine.get(key).and_then(Json::as_i64).is_some(),
            "missing engine counter {key:?}"
        );
    }

    let arena = value.get("arena").expect("arena section");
    for key in [
        "resident_nodes",
        "persistent_nodes",
        "scratch_live",
        "scratch_retired",
        "scratch_epochs",
        "engine_recycles",
    ] {
        assert!(
            arena.get(key).and_then(Json::as_i64).is_some(),
            "missing arena figure {key:?}"
        );
    }

    let ops = value.get("ops").expect("ops section");
    let nka_eq = ops.get("nka_eq").expect("nka_eq op histogram");
    for key in ["count", "mean_ns", "p50_ns", "p99_ns", "p999_ns"] {
        assert!(
            nka_eq.get(key).and_then(Json::as_i64).is_some(),
            "missing histogram field {key:?}"
        );
    }
    let buckets = nka_eq
        .get("buckets")
        .and_then(Json::as_array)
        .expect("log-bucketed histogram");
    assert!(!buckets.is_empty());
    let total: i64 = buckets
        .iter()
        .map(|pair| {
            let pair = pair.as_array().expect("[lower_ns, count] pair");
            assert_eq!(pair.len(), 2);
            pair[1].as_i64().expect("bucket count")
        })
        .sum();
    assert_eq!(
        Some(total),
        nka_eq.get("count").and_then(Json::as_i64),
        "bucket counts must sum to the op count"
    );
}

/// The optimizer gets its own counter section and latency histogram in
/// `--stats --json`: a batch over the golden optimize corpus must
/// report 20 `optimize` op samples and a populated per-rule step
/// breakdown (every catalog rule keyed, fired or not).
#[test]
fn optimizer_counters_and_histogram_appear_in_json_stats() {
    const OPTIMIZE_FILE: &str =
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/optimize_20.jsonl");
    let output = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["--stats", "--json", "batch", OPTIMIZE_FILE])
        .output()
        .expect("nka runs");
    assert!(output.status.success());
    let stderr = String::from_utf8(output.stderr).expect("stderr is UTF-8");
    let line = stderr
        .lines()
        .find(|line| line.starts_with('{'))
        .expect("a JSON stats line");
    let value = Json::parse(line).expect("stats JSON parses");

    let optimize = value.get("optimize").expect("optimize section");
    assert_eq!(optimize.get("queries").and_then(Json::as_i64), Some(20));
    for key in [
        "steps_applied",
        "candidates_refuted",
        "fixpoints",
        "budget_bails",
        "cycle_breaks",
        "engine_decides",
        "cert_cache_hits",
    ] {
        assert!(
            optimize.get(key).and_then(Json::as_i64).is_some(),
            "missing optimizer counter {key:?}"
        );
    }
    assert!(optimize.get("steps_applied").and_then(Json::as_i64) > Some(0));
    // The corpus carries one deliberate max_steps:1 budget bail and 19
    // fixpoint runs.
    assert_eq!(optimize.get("fixpoints").and_then(Json::as_i64), Some(19));
    assert_eq!(optimize.get("budget_bails").and_then(Json::as_i64), Some(1));
    let steps = optimize.get("steps").expect("per-rule step breakdown");
    for rule in ["dead-branch", "abort-sink", "loop-peeling", "gate-fusion"] {
        assert!(
            steps.get(rule).and_then(Json::as_i64).is_some(),
            "missing per-rule step key {rule:?}"
        );
    }
    assert!(steps.get("dead-branch").and_then(Json::as_i64) > Some(0));

    let ops = value.get("ops").expect("ops section");
    let entry = ops.get("optimize").expect("optimize op histogram");
    assert_eq!(entry.get("count").and_then(Json::as_i64), Some(20));
}

/// The quantum workloads (`prog_eq`, `hoare`) appear as their own ops
/// in the JSON histogram section when the stream contains them.
#[test]
fn quantum_ops_get_their_own_histograms() {
    let output = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["--stats", "--json", "batch", QPROG_FILE])
        .output()
        .expect("nka runs");
    assert!(output.status.success());
    let stderr = String::from_utf8(output.stderr).expect("stderr is UTF-8");
    let line = stderr
        .lines()
        .find(|line| line.starts_with('{'))
        .expect("a JSON stats line");
    let value = Json::parse(line).expect("stats JSON parses");
    let ops = value.get("ops").expect("ops section");
    for op in ["prog_eq", "hoare"] {
        let entry = ops.get(op).unwrap_or_else(|| panic!("missing op {op:?}"));
        assert!(
            entry.get("count").and_then(Json::as_i64) > Some(0),
            "empty histogram for {op:?}"
        );
    }
}
