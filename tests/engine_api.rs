//! The budgeted `Decider` engine exercised through the umbrella crate's
//! public surface: memoization, budget plumbing, batch ordering, and the
//! prover/engine integration — i.e. the contract every downstream layer
//! (CLI, benches, auto-prover) relies on.

use nka_quantum::nka::prover::{ProveOutcome, Prover};
use nka_quantum::nka::{DecideOptions, Decider};
use nka_quantum::syntax::Expr;

fn e(src: &str) -> Expr {
    src.parse().unwrap()
}

#[test]
fn repeated_queries_are_cache_hits() {
    let mut engine = Decider::new();
    let (l, r) = (e("(p q)* p"), e("p (q p)*"));
    assert!(engine.decide(&l, &r).unwrap());
    let after_first = engine.stats();
    assert_eq!(after_first.answer_hits, 0);
    assert_eq!(after_first.compile_misses, 2);

    assert!(engine.decide(&l, &r).unwrap());
    assert!(engine.decide(&r, &l).unwrap()); // symmetric orientation too
    let after_third = engine.stats();
    assert_eq!(after_third.answer_hits, 2);
    // No recompilation happened after the first query.
    assert_eq!(after_third.compile_misses, after_first.compile_misses);
}

#[test]
fn budget_surfaces_as_error_and_larger_budget_succeeds() {
    let (l, r) = (e("1* (a + b)*"), e("1* (a* b*)*"));
    let mut tiny = Decider::with_options(DecideOptions {
        max_dfa_states: 1,
        ..DecideOptions::default()
    });
    let err = tiny.decide(&l, &r).unwrap_err();
    assert!(err.to_string().contains("budget"), "unexpected: {err}");

    let mut roomy = Decider::with_budget(100_000);
    // Both sides saturate language-equal expressions (Remark 2.1), so a
    // sufficient budget decides the pair positively instead of erring.
    assert!(roomy.decide(&l, &r).unwrap());
}

#[test]
fn decide_all_is_order_preserving_with_partial_failures() {
    // A budget that admits the small pairs but not the ∞-support blow-up
    // pair in the middle: the batch must keep going and keep order.
    let pairs = vec![
        (e("a"), e("a")),
        (e("1* (a + b) (a + b) (a + b)"), e("1* b a a")),
        (e("a + a"), e("a")),
    ];
    let mut engine = Decider::with_budget(4);
    let verdicts = engine.decide_all(&pairs);
    assert_eq!(verdicts.len(), 3);
    assert_eq!(verdicts[0].as_ref().unwrap(), &true);
    assert!(verdicts[1].is_err(), "middle pair should exceed 4 states");
    assert_eq!(verdicts[2].as_ref().unwrap(), &false);
}

#[test]
fn prover_routes_refutation_through_engine() {
    let prover = Prover::new(&[]);
    let mut engine = Decider::new();
    match prover.prove_or_refute(&mut engine, &e("p + p"), &e("p")) {
        Ok(ProveOutcome::Refuted) => {}
        other => panic!("expected refutation, got {other:?}"),
    }
    // The refutation consumed exactly one engine query…
    assert_eq!(engine.stats().nka_queries, 1);
    // …and asking again is a verdict-cache hit.
    let _ = prover.prove_or_refute(&mut engine, &e("p + p"), &e("p"));
    assert_eq!(engine.stats().answer_hits, 1);
}

#[test]
fn ka_and_nka_surfaces_share_one_engine() {
    let mut engine = Decider::new();
    // Starred operands so the NKA side takes the generic automaton
    // pipeline (star-free pairs are answered by the multiset fast path
    // and compile nothing — see `fast_path_answers_without_compiling`).
    let (l, r) = (e("p* p*"), e("p*"));
    assert!(engine.ka_equiv(&l, &r).unwrap()); // idempotence holds in KA
    assert!(!engine.decide(&l, &r).unwrap()); // …but not in NKA
    let s = engine.stats();
    assert_eq!(s.ka_queries, 1);
    assert_eq!(s.nka_queries, 1);
    // Both pipelines compiled each side exactly once in total; every
    // later automaton access was a cache hit.
    assert_eq!(s.compile_misses, 2);
    assert!(s.compile_hits >= 2);
}

#[test]
fn fast_path_answers_without_compiling() {
    // A star-free refutation is served by the tiered fast path: no
    // compilation, no determinization, and the per-tier counters show
    // up in the public stats surface.
    let mut engine = Decider::new();
    let (l, r) = (e("p + p"), e("p"));
    assert!(!engine.decide(&l, &r).unwrap());
    let s = engine.stats();
    assert_eq!(s.compile_misses, 0);
    assert_eq!(s.dfa_misses, 0);
    assert_eq!(s.starfree_hits + s.prefix_hits, 1);
    assert_eq!(s.fastpath_fallbacks, 0);
    // The verdict landed in the ordinary cache.
    assert!(!engine.decide(&r, &l).unwrap());
    assert_eq!(engine.stats().answer_hits, 1);
}
