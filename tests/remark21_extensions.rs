//! Cross-crate integration tests for the paper's side results made
//! executable: the Remark 2.1 `1*K` KA embedding (`wfa::ka`), the
//! footnote-4 classical fragment (`nkat::pvm`), and the future-work
//! unitary-group embedding (`nka-core::group`).

use nka_quantum::nka::group::UnitaryGroup;
use nka_quantum::nka::Judgment;
use nka_quantum::syntax::{random_expr, Expr, ExprGenConfig, Symbol};
use nka_quantum::wfa::decide_eq;
use nka_quantum::wfa::ka::{ka_equiv, saturate};
use nkat::pvm::{is_pvm, pvm_hypotheses_hold, pvm_partition_hypotheses, DiagonalTest};
use proptest::prelude::*;
use qsim_quantum::Measurement;

fn small_exprs() -> impl Strategy<Value = Expr> {
    // Proptest drives the seed; the repo generator builds the tree. Sizes
    // stay small so the saturated NKA pipeline is fast per case.
    (0u64..u64::MAX).prop_map(|seed| {
        let alphabet = vec![Symbol::intern("a"), Symbol::intern("b")];
        let config = ExprGenConfig::new(alphabet).with_target_size(7);
        let mut s = seed | 1;
        random_expr(&config, &mut s)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Remark 2.1 as a property: the support-DFA KA decision and the NKA
    /// decision on the saturated pair compute the same relation.
    #[test]
    fn ka_agrees_with_saturated_nka(e in small_exprs(), f in small_exprs()) {
        let ka = ka_equiv(&e, &f).unwrap();
        let nka = decide_eq(&saturate(&e), &saturate(&f)).unwrap();
        prop_assert_eq!(ka, nka, "on {} vs {}", e, f);
    }

    /// KA equivalence is coarser than NKA equivalence: theoremhood in
    /// NKA implies language equality, never the other way around.
    #[test]
    fn nka_equality_implies_ka_equality(e in small_exprs(), f in small_exprs()) {
        if decide_eq(&e, &f).unwrap() {
            prop_assert!(ka_equiv(&e, &f).unwrap());
        }
    }

    /// The idempotent law holds throughout the image of saturation.
    #[test]
    fn image_of_saturation_is_idempotent(e in small_exprs()) {
        let se = saturate(&e);
        prop_assert!(decide_eq(&se.add(&se), &se).unwrap());
    }

    /// Boolean laws on random diagonal tests (dim 8, random subsets).
    #[test]
    fn diagonal_test_boolean_laws(a in 0u8.., b in 0u8.., c in 0u8..) {
        let t = |mask: u8| DiagonalTest::from_indices(8, (0..8).filter(|i| mask >> i & 1 == 1));
        let (a, b, c) = (t(a), t(b), t(c));
        prop_assert_eq!(a.and(&b), b.and(&a));
        prop_assert_eq!(a.or(&b.and(&c)), a.or(&b).and(&a.or(&c)));
        prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        prop_assert_eq!(a.and(&a.not()), DiagonalTest::bottom(8));
    }

    /// Diagonal-test meet agrees with superoperator composition — the
    /// algebra and the model stay in lockstep on random subsets.
    #[test]
    fn diagonal_meet_matches_model(a in 0u8.., b in 0u8..) {
        let t = |mask: u8| DiagonalTest::from_indices(8, (0..8).filter(|i| mask >> i & 1 == 1));
        let (a, b) = (t(a), t(b));
        let composed = a.superoperator().compose(&b.superoperator());
        prop_assert!(composed.approx_eq(&a.and(&b).superoperator(), 1e-12));
    }

    /// Generated cancellation certificates check for random words over a
    /// three-letter unitary alphabet.
    #[test]
    fn random_uncompute_words_cancel(letters in proptest::collection::vec(0usize..3, 0..6)) {
        let mut g = UnitaryGroup::new();
        let pool = [
            g.declare("ia", "ia_inv").0,
            g.declare("ib", "ib_inv").0,
            g.declare_involution("ih"),
        ];
        let word: Vec<Symbol> = letters.into_iter().map(|i| pool[i]).collect();
        let proof = g.cancellation_proof(&word).unwrap();
        let j = proof.check(&g.hypotheses()).unwrap();
        let expected = UnitaryGroup::word_expr(&word)
            .mul(&UnitaryGroup::word_expr(&g.inverse_word(&word)));
        prop_assert_eq!(j, Judgment::Eq(expected, Expr::one()));
    }
}

#[test]
fn footnote4_pvm_classification_on_concrete_measurements() {
    // Projective: computational basis and any diagonal-test PVM.
    assert!(is_pvm(&Measurement::computational_basis(4), 1e-12));
    let d = DiagonalTest::from_indices(4, [0, 3]);
    assert!(is_pvm(&d.measurement(), 1e-12));
    assert!(pvm_hypotheses_hold(&d.measurement(), 1e-12));

    // The generated hypotheses match the §5.1 proof's premises in shape:
    // for a two-outcome partition they include m1 m1 = m1 and m1 m0 = 0.
    let syms = [Symbol::intern("f0"), Symbol::intern("f1")];
    let hyps = pvm_partition_hypotheses(&syms);
    let texts: Vec<String> = hyps.iter().map(ToString::to_string).collect();
    assert!(texts.contains(&"f1 f1 = f1".to_owned()));
    assert!(texts.contains(&"f1 f0 = 0".to_owned()));
}

#[test]
fn ka_embedding_respects_program_encodings() {
    // Loop peeling is hypothesis-free, so its two sides are equal in NKA
    // and a fortiori language-equal — on encodings, both decisions agree
    // with the checked proof.
    let lhs: Expr = "(m1 p)* m0".parse().unwrap();
    let rhs: Expr = "m0 + m1 (p ((m1 p)* m0))".parse().unwrap();
    assert!(decide_eq(&lhs, &rhs).unwrap());
    assert!(ka_equiv(&lhs, &rhs).unwrap());

    // Unrolling (5.1.1) needs its projectivity hypotheses in *both*
    // theories: without them the right-hand side admits words like
    // `m0 p m1 m1` (take the inner branch, then exit) that the left-hand
    // side never produces, so even the supports differ.
    let u1: Expr = "(m0 p)* m1".parse().unwrap();
    let u2: Expr = "(m0 p (m0 p + m1 1))* m1".parse().unwrap();
    assert!(!decide_eq(&u1, &u2).unwrap());
    assert!(!ka_equiv(&u1, &u2).unwrap());

    // Where the theories *do* part ways on encodings: merging duplicated
    // measurement branches. `case M → {P | P}` collapses classically
    // (idempotence) but double-counts quantum probability mass.
    let dup: Expr = "m0 p + m0 p".parse().unwrap();
    let single: Expr = "m0 p".parse().unwrap();
    assert!(ka_equiv(&dup, &single).unwrap());
    assert!(!decide_eq(&dup, &single).unwrap());
}
