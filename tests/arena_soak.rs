//! Memory-soak gate for the arena lifecycle (Arena lifecycle v1).
//!
//! The PR 3 arena was append-only and the auto-prover interned every
//! transient search term, so a long-lived `serve` process grew without
//! bound under adversarially *distinct* `Prove` traffic (ROADMAP open
//! item). This suite is the enforced, observable boundedness property:
//! it drives 10 000 distinct `Prove` queries through one `Session` and
//! asserts the resident arena stays within a constant of the
//! *persistent query set* — not O(total search terms) — because every
//! search frontier is scratch-interned and retired when its query
//! answers.
//!
//! CI runs this file as its own release-mode step with `--nocapture`,
//! so the counts below land in the build log. `ARENA_SOAK_QUERIES`
//! overrides the query count (e.g. for quick local runs).

use nka_quantum::syntax::{
    arena_resident_nodes, interned_expr_count, scratch_live_nodes, scratch_retired_total,
};
use nka_quantum::{Query, Session, SessionOptions, Verdict};
use std::sync::Mutex;

/// Both tests assert on process-global arena counters inside
/// before/after windows; run them serially so neither perturbs the
/// other's window (cargo test runs `#[test]`s on parallel threads).
fn soak_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn soak_queries() -> usize {
    std::env::var("ARENA_SOAK_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

/// A distinct 14-letter word over `{sa, sb}` per index — fixed small
/// alphabet (so the symbol table stays constant), distinct structure
/// (so every query is genuinely new to the arena).
fn word(i: usize) -> String {
    (0..14)
        .map(|b| if (i >> b) & 1 == 1 { "sa" } else { "sb" })
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn distinct_prove_traffic_keeps_the_arena_bounded() {
    let _serial = soak_lock();
    let n = soak_queries();
    // Unprovable goals under commuting hypotheses: `sx w = w sy` needs
    // sx to *become* sy, which no rule allows — every search exhausts
    // its (small) expansion budget after materializing a frontier of
    // transient rewrite terms. That frontier is exactly the memory the
    // scope lifecycle must reclaim.
    let hyps = ["sx sa = sa sx", "sx sb = sb sx"];
    let queries: Vec<Query> = (0..n)
        .map(|i| {
            let w = word(i);
            Query::prove(&format!("sx {w}"), &format!("{w} sy"), &hyps).expect("well-formed")
        })
        .collect();

    // Everything the queries themselves intern is now resident: this is
    // the persistent query set the soak is allowed to cost.
    let persistent_before = interned_expr_count();
    let resident_before = arena_resident_nodes();
    let retired_before = scratch_retired_total();

    let mut session = Session::with_options(SessionOptions {
        // Small per-query search budget: the soak measures arena
        // behavior, not prover power. Each exhausted search still
        // interns a few dozen scratch terms.
        prove_max_expansions: 12,
        ..SessionOptions::default()
    });
    for (i, query) in queries.iter().enumerate() {
        let resp = session.run(query);
        assert!(
            matches!(resp.verdict, Verdict::Exhausted { .. }),
            "query {i}: expected an exhausted search, got {:?}",
            resp.verdict
        );
    }

    let persistent_after = interned_expr_count();
    let resident_after = arena_resident_nodes();
    let retired = scratch_retired_total() - retired_before;
    let persistent_growth = persistent_after - persistent_before;
    let mem = session.memory_stats();
    println!(
        "soak: {n} distinct Prove queries; persistent arena {persistent_before} -> \
         {persistent_after} nodes (+{persistent_growth}), resident {resident_before} -> \
         {resident_after}, scratch retired {retired} over {} scopes, live scratch {}",
        mem.scratch_scopes_retired,
        scratch_live_nodes(),
    );

    // The boundedness gate. Searching must not grow the persistent
    // arena at all beyond a constant slack (lazily interned constants
    // and the like) — O(1), not O(n), not O(search terms)…
    assert!(
        persistent_growth <= 16,
        "prover search leaked {persistent_growth} persistent arena nodes over {n} queries \
         (bound: 16 total)"
    );
    // …and every search's scratch must be retired, not left resident.
    assert_eq!(
        resident_after - persistent_after,
        resident_before - persistent_before,
        "live scratch nodes leaked across queries"
    );
    // The gate is only meaningful if the searches really churned: on
    // average well over one transient term per query was reclaimed.
    assert!(
        retired >= 10 * n as u64,
        "searches retired only {retired} scratch nodes over {n} queries — \
         the soak no longer exercises the scratch path"
    );
}

#[test]
fn proved_queries_persist_only_their_promoted_proofs() {
    let _serial = soak_lock();
    // Provable goals (one commutation at the left edge, then pure
    // reassociation): the found proof's terms are *supposed* to outlive
    // the query — they are promoted into the persistent arena — but the
    // growth must be O(proof), with the rest of the search frontier
    // still reclaimed.
    let n = 200;
    let hyps = ["sx sa = sa sx", "sx sb = sb sx"];
    let queries: Vec<Query> = (0..n)
        .map(|i| {
            let w = word(i);
            Query::prove(&format!("sx sa {w}"), &format!("sa sx {w}"), &hyps).expect("well-formed")
        })
        .collect();

    let persistent_before = interned_expr_count();
    let retired_before = scratch_retired_total();
    let mut session = Session::with_options(SessionOptions {
        prove_max_expansions: 80,
        ..SessionOptions::default()
    });
    let mut proved = 0usize;
    let mut proof_nodes = 0u64;
    for query in &queries {
        let resp = session.run(query);
        if let Verdict::Proved { proof_size } = resp.verdict {
            proved += 1;
            proof_nodes += proof_size as u64;
        }
    }
    let persistent_growth = interned_expr_count() - persistent_before;
    let retired = scratch_retired_total() - retired_before;
    println!(
        "promotion: {proved}/{n} proved ({proof_nodes} total rule applications); \
         persistent +{persistent_growth} nodes, scratch retired {retired}"
    );
    assert!(proved > 0, "no goal proved — promotion path unexercised");
    // Promoted proofs cost persistent nodes, but bounded by the proofs
    // themselves (each rule application mentions a handful of terms of
    // ~16 nodes), and far less than the search frontiers explored.
    assert!(
        (persistent_growth as u64) <= 64 * proof_nodes.max(1),
        "promotion leaked {persistent_growth} persistent nodes for {proof_nodes} proof steps"
    );
    assert!(
        retired > 0,
        "proved searches should still retire their unused frontier"
    );
}
