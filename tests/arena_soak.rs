//! Memory-soak gate for the arena lifecycle (Arena lifecycle v1).
//!
//! The PR 3 arena was append-only and the auto-prover interned every
//! transient search term, so a long-lived `serve` process grew without
//! bound under adversarially *distinct* `Prove` traffic (ROADMAP open
//! item). This suite is the enforced, observable boundedness property:
//! it drives 10 000 distinct `Prove` queries through one `Session` and
//! asserts the resident arena stays within a constant of the
//! *persistent query set* — not O(total search terms) — because every
//! search frontier is scratch-interned and retired when its query
//! answers.
//!
//! CI runs this file as its own release-mode step with `--nocapture`,
//! so the counts below land in the build log. `ARENA_SOAK_QUERIES`
//! overrides the query count (e.g. for quick local runs).

use nka_quantum::syntax::{
    arena_resident_nodes, interned_expr_count, scratch_live_nodes, scratch_retired_total, Symbol,
};
use nka_quantum::{Query, Session, SessionOptions, Verdict};
use std::sync::Mutex;

/// Both tests assert on process-global arena counters inside
/// before/after windows; run them serially so neither perturbs the
/// other's window (cargo test runs `#[test]`s on parallel threads).
fn soak_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn soak_queries() -> usize {
    std::env::var("ARENA_SOAK_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

/// A distinct 14-letter word over `{sa, sb}` per index — fixed small
/// alphabet (so the symbol table stays constant), distinct structure
/// (so every query is genuinely new to the arena).
fn word(i: usize) -> String {
    (0..14)
        .map(|b| if (i >> b) & 1 == 1 { "sa" } else { "sb" })
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn distinct_prove_traffic_keeps_the_arena_bounded() {
    let _serial = soak_lock();
    let n = soak_queries();
    // Unprovable goals under commuting hypotheses: `sx w = w sy` needs
    // sx to *become* sy, which no rule allows — every search exhausts
    // its (small) expansion budget after materializing a frontier of
    // transient rewrite terms. That frontier is exactly the memory the
    // scope lifecycle must reclaim.
    let hyps = ["sx sa = sa sx", "sx sb = sb sx"];
    let queries: Vec<Query> = (0..n)
        .map(|i| {
            let w = word(i);
            Query::prove(&format!("sx {w}"), &format!("{w} sy"), &hyps).expect("well-formed")
        })
        .collect();

    // Everything the queries themselves intern is now resident: this is
    // the persistent query set the soak is allowed to cost.
    let persistent_before = interned_expr_count();
    let resident_before = arena_resident_nodes();
    let retired_before = scratch_retired_total();

    let mut session = Session::with_options(
        // Small per-query search budget: the soak measures arena
        // behavior, not prover power. Each exhausted search still
        // interns a few dozen scratch terms.
        SessionOptions::builder()
            .prove_max_expansions(12)
            .build()
            .unwrap(),
    );
    for (i, query) in queries.iter().enumerate() {
        let resp = session.run(query);
        assert!(
            matches!(resp.verdict, Verdict::Exhausted { .. }),
            "query {i}: expected an exhausted search, got {:?}",
            resp.verdict
        );
    }

    let persistent_after = interned_expr_count();
    let resident_after = arena_resident_nodes();
    let retired = scratch_retired_total() - retired_before;
    let persistent_growth = persistent_after - persistent_before;
    let mem = session.memory_stats();
    println!(
        "soak: {n} distinct Prove queries; persistent arena {persistent_before} -> \
         {persistent_after} nodes (+{persistent_growth}), resident {resident_before} -> \
         {resident_after}, scratch retired {retired} over {} scopes, live scratch {}",
        mem.scratch_scopes_retired,
        scratch_live_nodes(),
    );

    // The boundedness gate. Searching must not grow the persistent
    // arena at all beyond a constant slack (lazily interned constants
    // and the like) — O(1), not O(n), not O(search terms)…
    assert!(
        persistent_growth <= 16,
        "prover search leaked {persistent_growth} persistent arena nodes over {n} queries \
         (bound: 16 total)"
    );
    // …and every search's scratch must be retired, not left resident.
    assert_eq!(
        resident_after - persistent_after,
        resident_before - persistent_before,
        "live scratch nodes leaked across queries"
    );
    // The gate is only meaningful if the searches really churned: on
    // average well over one transient term per query was reclaimed.
    assert!(
        retired >= 10 * n as u64,
        "searches retired only {retired} scratch nodes over {n} queries — \
         the soak no longer exercises the scratch path"
    );
}

#[test]
fn proved_queries_persist_only_their_promoted_proofs() {
    let _serial = soak_lock();
    // Provable goals (one commutation at the left edge, then pure
    // reassociation): the found proof's terms are *supposed* to outlive
    // the query — they are promoted into the persistent arena — but the
    // growth must be O(proof), with the rest of the search frontier
    // still reclaimed.
    let n = 200;
    let hyps = ["sx sa = sa sx", "sx sb = sb sx"];
    let queries: Vec<Query> = (0..n)
        .map(|i| {
            let w = word(i);
            Query::prove(&format!("sx sa {w}"), &format!("sa sx {w}"), &hyps).expect("well-formed")
        })
        .collect();

    let persistent_before = interned_expr_count();
    let retired_before = scratch_retired_total();
    let mut session = Session::with_options(
        SessionOptions::builder()
            .prove_max_expansions(80)
            .build()
            .unwrap(),
    );
    let mut proved = 0usize;
    let mut proof_nodes = 0u64;
    for query in &queries {
        let resp = session.run(query);
        if let Verdict::Proved { proof_size } = resp.verdict {
            proved += 1;
            proof_nodes += proof_size as u64;
        }
    }
    let persistent_growth = interned_expr_count() - persistent_before;
    let retired = scratch_retired_total() - retired_before;
    println!(
        "promotion: {proved}/{n} proved ({proof_nodes} total rule applications); \
         persistent +{persistent_growth} nodes, scratch retired {retired}"
    );
    assert!(proved > 0, "no goal proved — promotion path unexercised");
    // Promoted proofs cost persistent nodes, but bounded by the proofs
    // themselves (each rule application mentions a handful of terms of
    // ~16 nodes), and far less than the search frontiers explored.
    assert!(
        (persistent_growth as u64) <= 64 * proof_nodes.max(1),
        "promotion leaked {persistent_growth} persistent nodes for {proof_nodes} proof steps"
    );
    assert!(
        retired > 0,
        "proved searches should still retire their unused frontier"
    );
}

/// A distinct single-qubit program per index: a 6-gate sequence
/// spelled by the base-6 digits of `i` (6⁶ ≈ 47k distinct shapes).
/// The alphabet stays constant (six `<gate>_q0` names) while every
/// program is structurally new; six gates keeps the per-query exact
/// decide ~10 ms — the zeroness check scales steeply with encoding
/// length, so the soak measures arena behavior, not decider power.
fn gate_word(i: usize) -> String {
    const GATES: [&str; 6] = ["h", "x", "y", "z", "s", "t"];
    let mut k = i;
    let gates = (0..6)
        .map(|_| {
            let g = format!("{} q0", GATES[k % 6]);
            k /= 6;
            g
        })
        .collect::<Vec<_>>()
        .join("; ");
    format!("qubits 1; {gates}")
}

/// ProgEq soak sizes: the full 10k in release (the CI gate and the
/// acceptance criterion), a smoke-sized sample under the debug-profile
/// tier-1 `cargo test` where each exact decide is ~10× slower.
/// `ARENA_SOAK_QUERIES` overrides both.
fn prog_eq_soak_queries() -> usize {
    std::env::var("ARENA_SOAK_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 200 } else { 10_000 })
}

#[test]
fn distinct_prog_eq_traffic_keeps_the_arena_bounded() {
    let _serial = soak_lock();
    let n = prog_eq_soak_queries();
    // Refuted pairs: p vs p-with-a-z-appended — always algebraically
    // distinct, so nothing is ever promoted. This is the quantum
    // workload's half of the PR 4 memory model: program encodings are
    // scratch-interned per query and retired when it answers, so 10k
    // distinct ProgEq queries must add zero persistent arena nodes.
    let queries: Vec<Query> = (0..n)
        .map(|i| {
            let p = gate_word(i);
            let q = format!("{p}; z q0");
            Query::prog_eq(&p, &q).expect("well-formed")
        })
        .collect();

    let persistent_before = interned_expr_count();
    let resident_before = arena_resident_nodes();
    let retired_before = scratch_retired_total();
    let symbols_before = Symbol::interned_count();

    let mut session = Session::new();
    for (i, query) in queries.iter().enumerate() {
        let resp = session.run(query);
        assert!(
            matches!(resp.verdict, Verdict::ProgEq { holds: false, .. }),
            "query {i}: expected a refuted ProgEq, got {:?}",
            resp.verdict
        );
    }

    let persistent_growth = interned_expr_count() - persistent_before;
    let retired = scratch_retired_total() - retired_before;
    let symbol_growth = Symbol::interned_count() - symbols_before;
    println!(
        "prog_eq soak: {n} distinct refuted pairs; persistent +{persistent_growth} nodes, \
         resident {resident_before} -> {}, scratch retired {retired}, symbols +{symbol_growth}",
        arena_resident_nodes(),
    );
    // The acceptance gate: zero persistent growth for refuted traffic
    // (a small slack for lazily interned constants, as in the Prove
    // soak above).
    assert!(
        persistent_growth <= 16,
        "refuted ProgEq traffic leaked {persistent_growth} persistent arena nodes over {n} queries"
    );
    assert_eq!(
        arena_resident_nodes() - interned_expr_count(),
        resident_before - persistent_before,
        "live scratch nodes leaked across ProgEq queries"
    );
    // Each pair's two encodings span ~10 scratch subterms (6/7-gate
    // products minus shared constants); well over half must churn
    // through the scratch region every query.
    assert!(
        retired >= 6 * n as u64,
        "ProgEq encodings retired only {retired} scratch nodes over {n} queries"
    );
    // Surface programs derive encoder names from gate × qubit, so the
    // symbol table cannot grow with query *count*, only with the
    // (constant) alphabet — the bounded-alphabet half of the ROADMAP
    // `Symbol` note.
    assert!(
        symbol_growth <= 8,
        "program traffic grew the symbol table by {symbol_growth} names"
    );
}

#[test]
fn distinct_analyze_traffic_keeps_the_arena_bounded() {
    let _serial = soak_lock();
    let n = prog_eq_soak_queries();
    // Distinct abort-sealed branches: every program carries a genuinely
    // new dead arm, so each query runs a fresh Tier B zeroness decide
    // that *holds* and emits a certificate — the analyzer's memory
    // contract is that even holding checks never promote (unlike
    // `prog_eq`, whose equal pairs persist their encodings): Tier B
    // analyses are scratch-scoped end to end, so 10k distinct analyzed
    // programs must add zero persistent arena nodes.
    let queries: Vec<Query> = (0..n)
        .map(|i| {
            let gates = &gate_word(i)["qubits 1; ".len()..];
            let prog = format!("qubits 1; if q0 {{ {gates}; abort }} else {{ skip }}");
            Query::analyze(&prog, &[] as &[&str]).expect("well-formed")
        })
        .collect();

    let persistent_before = interned_expr_count();
    let resident_before = arena_resident_nodes();
    let retired_before = scratch_retired_total();
    let symbols_before = Symbol::interned_count();

    let mut session = Session::new();
    for (i, query) in queries.iter().enumerate() {
        let resp = session.run(query);
        let Verdict::Analysis { findings } = &resp.verdict else {
            panic!(
                "query {i}: expected an Analysis verdict, got {:?}",
                resp.verdict
            );
        };
        assert!(
            findings
                .iter()
                .any(|f| f.pass == "dead_branch" && f.certificate.is_some()),
            "query {i}: the abort-sealed arm must yield a certified dead_branch finding"
        );
    }

    let persistent_growth = interned_expr_count() - persistent_before;
    let retired = scratch_retired_total() - retired_before;
    let symbol_growth = Symbol::interned_count() - symbols_before;
    let analysis = session.analysis_stats();
    println!(
        "analyze soak: {n} distinct programs, {} Tier B decides ({} cache hits); \
         persistent +{persistent_growth} nodes, resident {resident_before} -> {}, \
         scratch retired {retired}, symbols +{symbol_growth}",
        analysis.tier_b_decides,
        analysis.cert_cache_hits,
        arena_resident_nodes(),
    );
    // The acceptance gate: zero persistent growth (the usual slack for
    // lazily interned constants) even though every query's dead-branch
    // check held.
    assert!(
        persistent_growth <= 16,
        "analyze traffic leaked {persistent_growth} persistent arena nodes over {n} queries"
    );
    assert_eq!(
        arena_resident_nodes() - interned_expr_count(),
        resident_before - persistent_before,
        "live scratch nodes leaked across analyze queries"
    );
    // Every query ran at least its dead-branch and whole-program
    // checks through the scratch region.
    assert!(
        retired >= 6 * n as u64,
        "analyze checks retired only {retired} scratch nodes over {n} queries"
    );
    assert!(
        analysis.tier_b_decides >= n as u64,
        "only {} Tier B decides over {n} distinct programs",
        analysis.tier_b_decides
    );
    assert!(
        symbol_growth <= 8,
        "analyze traffic grew the symbol table by {symbol_growth} names"
    );
}

#[test]
fn distinct_optimize_traffic_keeps_the_arena_bounded() {
    let _serial = soak_lock();
    let n = prog_eq_soak_queries();
    // Distinct abort-sealed branches again, but through the optimizer:
    // every query analyzes, *applies* the certified dead-branch
    // rewrite, re-analyzes the rewritten program to fixpoint, and
    // decides the final whole-program certificate. Candidate rewrites,
    // re-analysis encodings, and the certificate decide all run inside
    // the query's outer scratch scope, so even this apply-heavy
    // workload must add zero persistent arena nodes over 10k distinct
    // programs.
    let queries: Vec<Query> = (0..n)
        .map(|i| {
            let gates = &gate_word(i)["qubits 1; ".len()..];
            let prog = format!("qubits 1; if q0 {{ {gates}; abort }} else {{ skip }}");
            Query::optimize(&prog, &[] as &[&str], 32, 1).expect("well-formed")
        })
        .collect();

    let persistent_before = interned_expr_count();
    let resident_before = arena_resident_nodes();
    let retired_before = scratch_retired_total();
    let symbols_before = Symbol::interned_count();

    let mut session = Session::new();
    for (i, query) in queries.iter().enumerate() {
        let resp = session.run(query);
        let Verdict::Optimized {
            steps, fixpoint, ..
        } = &resp.verdict
        else {
            panic!(
                "query {i}: expected an Optimized verdict, got {:?}",
                resp.verdict
            );
        };
        assert!(
            steps.iter().any(|s| s.rule == "dead-branch"),
            "query {i}: the abort-sealed arm must be rewritten away"
        );
        assert!(*fixpoint, "query {i}: expected a fixpoint run");
    }

    let persistent_growth = interned_expr_count() - persistent_before;
    let retired = scratch_retired_total() - retired_before;
    let symbol_growth = Symbol::interned_count() - symbols_before;
    let optimize = session.optimize_stats();
    println!(
        "optimize soak: {n} distinct programs, {} steps applied, {} engine decides \
         ({} cert cache hits); persistent +{persistent_growth} nodes, resident \
         {resident_before} -> {}, scratch retired {retired}, symbols +{symbol_growth}",
        optimize.steps_applied,
        optimize.engine_decides,
        optimize.cert_cache_hits,
        arena_resident_nodes(),
    );
    // The acceptance gate: applying rewrites costs nothing persistent —
    // the rewritten program text lives in the response, not the arena.
    assert!(
        persistent_growth <= 16,
        "optimize traffic leaked {persistent_growth} persistent arena nodes over {n} queries"
    );
    assert_eq!(
        arena_resident_nodes() - interned_expr_count(),
        resident_before - persistent_before,
        "live scratch nodes leaked across optimize queries"
    );
    // Every query ran analysis, at least one certified apply, a
    // re-analysis, and the final certificate decide through scratch.
    assert!(
        retired >= 6 * n as u64,
        "optimize runs retired only {retired} scratch nodes over {n} queries"
    );
    assert!(
        optimize.steps_applied >= n as u64,
        "only {} applied steps over {n} distinct sealed programs",
        optimize.steps_applied
    );
    assert!(
        optimize.engine_decides >= n as u64,
        "only {} engine decides over {n} distinct final certificates",
        optimize.engine_decides
    );
    assert!(
        symbol_growth <= 8,
        "optimize traffic grew the symbol table by {symbol_growth} names"
    );
}

#[test]
fn equal_prog_eq_pairs_persist_only_their_promoted_encodings() {
    let _serial = soak_lock();
    // Equal pairs (skip-padding): the decided-equal encodings are
    // promoted — growth must be O(encoding), not O(scratch searched),
    // and a repeat of the same pair must add nothing.
    let n = if cfg!(debug_assertions) { 25 } else { 100 };
    let queries: Vec<Query> = (0..n)
        .map(|i| {
            let p = gate_word(i);
            let q = format!("qubits 1; skip; {}", &p["qubits 1; ".len()..]);
            Query::prog_eq(&p, &q).expect("well-formed")
        })
        .collect();

    let persistent_before = interned_expr_count();
    let mut session = Session::new();
    for query in &queries {
        let resp = session.run(query);
        assert!(matches!(resp.verdict, Verdict::ProgEq { holds: true, .. }));
    }
    let persistent_growth = interned_expr_count() - persistent_before;
    // Each 14-gate pair promotes ≤ ~2×15 subterms (shared across the
    // sides and across queries with common prefixes).
    println!("prog_eq promotion: {n} equal pairs promoted +{persistent_growth} nodes");
    assert!(
        persistent_growth <= 64 * n,
        "equal-pair promotion leaked {persistent_growth} nodes over {n} queries"
    );
    // Re-running the same queries must be pure cache traffic.
    let promoted = interned_expr_count();
    for query in &queries {
        let resp = session.run(query);
        assert!(matches!(resp.verdict, Verdict::ProgEq { holds: true, .. }));
    }
    assert_eq!(
        interned_expr_count(),
        promoted,
        "repeated equal pairs re-promoted their encodings"
    );
}

#[test]
fn distinct_atom_names_grow_the_symbol_table_linearly_but_tiny() {
    let _serial = soak_lock();
    let n = soak_queries();
    // The unbounded direction of the ROADMAP `Symbol` note: raw
    // expression traffic with fresh atom names. The table is
    // append-only by design (symbols are identity — folding them into
    // the scratch lifecycle would re-key live engine caches); this
    // soak measures the cost so the README can state it: each name
    // costs its text twice (vec + map key) plus container overhead.
    let symbols_before = Symbol::interned_count();
    let bytes_before = Symbol::interned_bytes();
    let mut session = Session::new();
    let mut name_text = 0usize;
    for i in 0..n {
        let name = format!("symsoak{i}");
        name_text += name.len();
        let resp = session.run(&Query::nka_eq(&name, &name).expect("well-formed"));
        assert!(matches!(resp.verdict, Verdict::Holds));
    }
    let grown = Symbol::interned_count() - symbols_before;
    let bytes = Symbol::interned_bytes() - bytes_before;
    println!(
        "symbol soak: {n} distinct atom names -> +{grown} symbols, +{bytes} name-text bytes \
         ({:.1} bytes/name text; map/vec overhead adds ~48 bytes/name)",
        bytes as f64 / grown.max(1) as f64
    );
    assert_eq!(grown, n, "every distinct name interns exactly once");
    // The measured bound documented in README's memory model: name
    // text is stored twice, nothing else scales with traffic.
    assert_eq!(bytes, 2 * name_text);
    // Re-interning the same names is free.
    let stable = Symbol::interned_count();
    for i in 0..n.min(100) {
        let _ = Symbol::intern(&format!("symsoak{i}"));
    }
    assert_eq!(Symbol::interned_count(), stable);
}
