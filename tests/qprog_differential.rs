//! Differential oracle for the `ProgEq` quantum workload: the
//! *algebraic* verdict (decide `Enc(p) = Enc(q)` per Definition 4.4 on
//! the warm engine) against *superoperator semantics* ground truth
//! (`Program::run` on a spanning basis of densities).
//!
//! Theorem 4.5 makes the encoder sound — `⊢NKA Enc(p) = Enc(q)` implies
//! `⟦p⟧ = ⟦q⟧` — but not complete (e.g. `h q0; h q0` vs `skip`:
//! semantically equal, algebraically distinct). The differential
//! properties pin down exactly the sound direction, in both
//! orientations:
//!
//! * **equal direction** — `p` against an encoding-preserving rewrite
//!   of `p` must answer `holds`, and the semantics must agree;
//! * **distinct direction** — independently generated pairs: whenever
//!   the semantics *differ* the verdict must be `refuted`
//!   (contrapositive of soundness), and whenever the verdict is
//!   `holds` the semantics must agree.
//!
//! Cases are generated from the recipe AST in `tests/support` with the
//! shim's deterministic per-test seed (CI runs this suite in release
//! mode; the seed is fixed by construction, so failures reproduce).

mod support;

use nka_quantum::api::SessionOptions;
use nka_quantum::qprog::SurfaceProgram;
use nka_quantum::wfa::decide::DecideOptions;
use nka_quantum::{Query, Session, Verdict};
use proptest::prelude::*;
use support::{
    loop_free_programs, rewrite_preserving, semantically_equal, small_programs, RProg, RStmt,
};

/// Runs a `ProgEq` query on a warm session; panics on anything but a
/// program verdict (the budget is far above these term sizes).
fn prog_eq_holds(session: &mut Session, p: &RProg, q: &RProg) -> bool {
    let query = Query::prog_eq(&p.to_string(), &q.to_string())
        .unwrap_or_else(|err| panic!("generated pair malformed: {err}\n  p: {p}\n  q: {q}"));
    match session.run(&query).verdict {
        Verdict::ProgEq { holds, .. } => holds,
        other => panic!("expected a ProgEq verdict, got {other:?}\n  p: {p}\n  q: {q}"),
    }
}

/// A session with the star-free fast path disabled: every decide runs
/// the full generic WFA pipeline. The parity properties compare this
/// against a default (fast-path-enabled) session.
fn generic_session() -> Session {
    Session::with_options(
        SessionOptions::builder()
            .decide(DecideOptions {
                starfree_max_words: 0,
                ..DecideOptions::default()
            })
            .build()
            .unwrap(),
    )
}

const SEM_TOL: f64 = 1e-7;

/// 256 cases per property in release (the acceptance bar; CI runs this
/// suite in the release-test job), a smoke-sized sample under the
/// debug-profile `cargo test` so the exact-arithmetic decides don't
/// dominate the tier-1 wall clock.
const CASES: u32 = if cfg!(debug_assertions) { 32 } else { 256 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Equal direction: an encoding-preserving rewrite keeps both the
    /// algebraic verdict (`holds`) and the denotational semantics.
    #[test]
    fn rewritten_programs_stay_equal(p in small_programs(), rounds in 1usize..4) {
        let mut rng = TestRng::deterministic(&format!("rewrite::{p}::{rounds}"));
        let q = rewrite_preserving(&p, &mut rng, rounds);
        let mut session = Session::new();
        prop_assert!(
            prog_eq_holds(&mut session, &p, &q),
            "rewrite broke the encoding equality\n  p: {}\n  q: {}",
            p,
            q
        );
        // The oracle agrees: Enc-equality implies ⟦p⟧ = ⟦q⟧ (Thm 4.5).
        let (sp, sq) = (p.parse(), q.parse());
        prop_assert!(
            semantically_equal(&sp, &sq, SEM_TOL),
            "algebra said equal, semantics disagree\n  p: {}\n  q: {}",
            p,
            q
        );
    }

    /// Distinct direction: on independent pairs the algebraic verdict
    /// must never contradict the superoperator oracle — semantic
    /// difference forces `refuted`; `holds` forces semantic equality.
    #[test]
    fn verdicts_are_sound_on_independent_pairs(p in small_programs(), seed in 0u64..1 << 32) {
        // Draw the partner over the same qubit count (prog_eq requires
        // it) from an independent deterministic stream.
        let mut rng = TestRng::deterministic(&format!("partner::{seed}"));
        let q = loop {
            let candidate = small_programs().generate(&mut rng);
            if candidate.qubits == p.qubits {
                break candidate;
            }
        };
        let mut session = Session::new();
        let alg_equal = prog_eq_holds(&mut session, &p, &q);
        let sem_equal = semantically_equal(&p.parse(), &q.parse(), SEM_TOL);
        if alg_equal {
            prop_assert!(
                sem_equal,
                "UNSOUND: algebra proved equality the semantics refute\n  p: {}\n  q: {}",
                p,
                q
            );
        }
        if !sem_equal {
            prop_assert!(
                !alg_equal,
                "UNSOUND: semantically distinct programs decided equal\n  p: {}\n  q: {}",
                p,
                q
            );
        }
    }

    /// Fast-path parity on the *mixed* generator (loops included):
    /// whatever tier answers a pair, the whole verdict — `holds` and
    /// the rendered encodings — must byte-match the fast-path-disabled
    /// generic pipeline.
    #[test]
    fn fast_and_generic_verdicts_match_on_mixed_programs(p in small_programs(), seed in 0u64..1 << 32) {
        let mut rng = TestRng::deterministic(&format!("parity::{seed}"));
        let q = loop {
            let candidate = small_programs().generate(&mut rng);
            if candidate.qubits == p.qubits {
                break candidate;
            }
        };
        let query = Query::prog_eq(&p.to_string(), &q.to_string())
            .unwrap_or_else(|err| panic!("generated pair malformed: {err}\n  p: {p}\n  q: {q}"));
        let fast = Session::new().run(&query).verdict;
        let generic = generic_session().run(&query).verdict;
        prop_assert_eq!(
            &fast, &generic,
            "fast path and generic pipeline disagree\n  p: {}\n  q: {}",
            p, q
        );
    }

    /// Star-free parity, both directions: on loop-free programs (whose
    /// encodings are star-free by construction) the default session
    /// must answer through the fast path — the stats delta proves it —
    /// and agree with the generic pipeline both on an
    /// encoding-preserving rewrite (equal direction) and on an
    /// independent partner (overwhelmingly refuted direction).
    #[test]
    fn starfree_fast_path_matches_generic_in_both_directions(p in loop_free_programs(), seed in 0u64..1 << 32) {
        let mut rng = TestRng::deterministic(&format!("starfree::{seed}"));
        let equal_partner = rewrite_preserving(&p, &mut rng, 2);
        let independent_partner = loop {
            let candidate = loop_free_programs().generate(&mut rng);
            if candidate.qubits == p.qubits {
                break candidate;
            }
        };
        for q in [&equal_partner, &independent_partner] {
            let query = Query::prog_eq(&p.to_string(), &q.to_string())
                .unwrap_or_else(|err| panic!("generated pair malformed: {err}\n  p: {p}\n  q: {q}"));
            let fast = Session::new().run(&query);
            let generic = generic_session().run(&query);
            prop_assert_eq!(
                &fast.verdict, &generic.verdict,
                "fast path and generic pipeline disagree on a star-free pair\n  p: {}\n  q: {}",
                p, q
            );
            prop_assert!(
                fast.stats_delta.starfree_hits + fast.stats_delta.prefix_hits >= 1,
                "loop-free pair was not answered by the fast path\n  p: {}\n  q: {}",
                p, q
            );
            prop_assert_eq!(
                generic.stats_delta.starfree_hits + generic.stats_delta.prefix_hits, 0,
                "disabled fast path still reported hits"
            );
        }
    }

    /// Optimizer soundness, the differential way: whatever program the
    /// optimizer returns must be superoperator-equal to its input under
    /// the density-basis oracle — for *every* generated program, the
    /// ones where rewrites fire and the ones where nothing does (the
    /// zero-step runs must return the input verbatim with an empty
    /// trace). The final certificate must replay to `holds` on a fresh
    /// session either way, so optimizer output is never trusted beyond
    /// what the engine re-proves.
    #[test]
    fn optimizer_output_is_semantically_equal_and_certified(
        p in small_programs(),
        seed in 0u64..1 << 32,
    ) {
        let mut rng = TestRng::deterministic(&format!("optimize::{seed}"));
        // Half the cases get an abort-sealed arm injected so certified
        // rewrites (dead-branch at least) are guaranteed to fire; the
        // other half stay as generated, keeping zero-step runs in the
        // sample.
        let prog = if rng.below(2) == 0 {
            let guard = rng.below(p.qubits as u64) as usize;
            let mut body = p.body.clone();
            body.push(RStmt::If(
                guard,
                vec![RStmt::Gate1("h", guard), RStmt::Abort],
                vec![RStmt::Skip],
            ));
            RProg { qubits: p.qubits, body }
        } else {
            p
        };
        let source = prog.to_string();
        let query = Query::optimize(&source, &[] as &[&str], 32, 1)
            .unwrap_or_else(|err| panic!("generated program malformed: {err}\n  {prog}"));
        let mut session = Session::new();
        let Verdict::Optimized { optimized, steps, certificate, fixpoint, .. } =
            session.run(&query).verdict
        else {
            panic!("expected an Optimized verdict for {prog}");
        };
        // Ground truth: the rewrite chain preserved the superoperator.
        let before = prog.parse();
        let after = SurfaceProgram::parse(&optimized)
            .unwrap_or_else(|err| panic!("optimizer emitted garbage: {err}\n  {optimized}"));
        prop_assert!(
            semantically_equal(&before, &after, SEM_TOL),
            "UNSOUND: optimizer changed the semantics\n  before: {}\n  after:  {}",
            source, optimized
        );
        // Zero rules fired: identity output, empty trace, fixpoint.
        if steps.is_empty() {
            prop_assert_eq!(&optimized, &source, "a zero-step run must return its input");
            prop_assert!(fixpoint, "a zero-step run is a fixpoint by definition");
        }
        // The certificate replays on a fresh session.
        prop_assert_eq!(&certificate.p, &source);
        prop_assert_eq!(&certificate.q, &optimized);
        let replay = Query::prog_eq(&certificate.p, &certificate.q)
            .unwrap_or_else(|err| panic!("certificate does not re-parse: {err}\n  {prog}"));
        let verdict = Session::new().run(&replay).verdict;
        prop_assert!(
            matches!(verdict, Verdict::ProgEq { holds: true, .. }),
            "optimizer certificate failed to replay\n  p: {}\n  q: {}\n  got {:?}",
            certificate.p, certificate.q, verdict
        );
    }

    /// Tier B soundness for the static analyzer: every `dead_branch`
    /// finding's embedded certificate replays to the same verdict
    /// (`holds`) on a *fresh* session, and the flagged arm really is
    /// the zero superoperator — `⟦if qK { arm } else { abort }⟧ =
    /// ⟦abort⟧` under the density-basis oracle (dead code ⇔ zeroness,
    /// Definition 4.4). An abort-sealed arm is injected so every case
    /// is guaranteed at least one finding to check.
    #[test]
    fn dead_branch_certificates_replay_and_are_semantically_zero(
        p in small_programs(),
        seed in 0u64..1 << 32,
    ) {
        let mut rng = TestRng::deterministic(&format!("deadbranch::{seed}"));
        let guard = rng.below(p.qubits as u64) as usize;
        let mut body = p.body.clone();
        // The arm ends in `abort`, so Enc(arm) = Enc(prefix) · 0 = 0
        // whatever the generated prefix does.
        let mut arm = match rng.below(3) {
            0 => vec![RStmt::Gate1("h", guard)],
            1 => vec![RStmt::Init(guard)],
            _ => Vec::new(),
        };
        arm.push(RStmt::Abort);
        body.push(RStmt::If(guard, arm, vec![RStmt::Skip]));
        let prog = RProg { qubits: p.qubits, body };

        let query = Query::analyze(&prog.to_string(), &["dead_branch"])
            .unwrap_or_else(|err| panic!("generated program malformed: {err}\n  {prog}"));
        let mut session = Session::new();
        let Verdict::Analysis { findings } = session.run(&query).verdict else {
            panic!("expected an Analysis verdict for {prog}");
        };
        let dead: Vec<_> = findings.iter().filter(|f| f.pass == "dead_branch").collect();
        prop_assert!(
            !dead.is_empty(),
            "the abort-sealed arm must be flagged dead\n  {}",
            prog
        );
        for finding in dead {
            let cert = finding
                .certificate
                .as_ref()
                .unwrap_or_else(|| panic!("dead_branch finding without certificate: {prog}"));
            prop_assert_eq!(cert.expect, "holds");
            // Replay on a fresh session: same query, same verdict.
            let replay = Query::prog_eq(&cert.p, &cert.q)
                .unwrap_or_else(|err| panic!("certificate does not re-parse: {err}\n  {prog}"));
            let verdict = Session::new().run(&replay).verdict;
            prop_assert!(
                matches!(verdict, Verdict::ProgEq { holds: true, .. }),
                "certificate failed to replay\n  p: {}\n  q: {}\n  got {:?}",
                cert.p, cert.q, verdict
            );
            // Ground truth: the flagged arm is semantically zero. The
            // certificate's LHS wraps it as `if qK { arm } else
            // { abort }`, so its denotation must equal ⟦abort⟧.
            let lhs = SurfaceProgram::parse(&cert.p)
                .unwrap_or_else(|err| panic!("certificate LHS malformed: {err}\n  {}", cert.p));
            let abort = SurfaceProgram::parse(&format!("qubits {}; abort", prog.qubits))
                .expect("abort program parses");
            prop_assert!(
                semantically_equal(&lhs, &abort, SEM_TOL),
                "flagged-dead arm is not semantically zero\n  cert.p: {}",
                cert.p
            );
        }
    }
}

/// The optimizer property above must exercise both run shapes — cases
/// where rewrites fire and zero-step identity runs — or its weakest
/// clauses go untested. Pinned deterministically here.
#[test]
fn optimizer_differential_reaches_both_run_shapes() {
    let mut session = Session::new();
    let multi = Query::optimize(
        "qubits 2; if q0 { h q1; abort } else { skip }; abort; x q0",
        &[] as &[&str],
        32,
        1,
    )
    .unwrap();
    let Verdict::Optimized { steps, .. } = session.run(&multi).verdict else {
        panic!("expected an Optimized verdict");
    };
    assert!(
        !steps.is_empty(),
        "rewrites must fire on the sealed program"
    );
    let zero = Query::optimize("qubits 1; h q0; x q0", &[] as &[&str], 32, 1).unwrap();
    let Verdict::Optimized {
        optimized, steps, ..
    } = session.run(&zero).verdict
    else {
        panic!("expected an Optimized verdict");
    };
    assert!(steps.is_empty(), "no catalog rule applies to a gate chain");
    assert_eq!(optimized, "qubits 1; h q0; x q0");
}

/// The suite must exercise both verdicts — a generator drifting into
/// all-equal or all-distinct pairs would silently gut the properties
/// above, so the mix is asserted here.
#[test]
fn generator_reaches_both_verdicts() {
    let mut rng = TestRng::deterministic("generator_reaches_both_verdicts");
    let mut session = Session::new();
    let strat = small_programs();
    let (mut holds, mut refuted) = (0usize, 0usize);
    for _ in 0..64 {
        let p = strat.generate(&mut rng);
        let rewritten = rewrite_preserving(&p, &mut rng.clone(), 1);
        if prog_eq_holds(&mut session, &p, &rewritten) {
            holds += 1;
        }
        let partner = loop {
            let c = strat.generate(&mut rng);
            if c.qubits == p.qubits {
                break c;
            }
        };
        if !prog_eq_holds(&mut session, &p, &partner) {
            refuted += 1;
        }
    }
    assert!(holds >= 60, "only {holds}/64 rewritten pairs held");
    assert!(refuted >= 32, "only {refuted}/64 independent pairs refuted");
}

/// Loop coverage pinned down explicitly: unrolling is an equality, one
/// extra iteration of the body is not (unless the body is involutive —
/// not the case for the `x` mixer against `skip` tails).
#[test]
fn while_unrolling_is_equal_but_body_changes_are_not() {
    let mut session = Session::new();
    let q = Query::prog_eq(
        "qubits 2; while q0 { h q1; x q0 }",
        "qubits 2; if q0 { h q1; x q0; while q0 { h q1; x q0 } } else { }",
    )
    .unwrap();
    assert!(matches!(
        session.run(&q).verdict,
        Verdict::ProgEq { holds: true, .. }
    ));
    let q = Query::prog_eq(
        "qubits 2; while q0 { h q1; x q0 }",
        "qubits 2; while q0 { h q1; h q1; x q0 }",
    )
    .unwrap();
    assert!(matches!(
        session.run(&q).verdict,
        Verdict::ProgEq { holds: false, .. }
    ));
}
