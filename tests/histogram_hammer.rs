//! Concurrency-correctness smoke for the serve-v2 measurement
//! primitives: the lock-free per-op latency histograms
//! ([`OpHistograms`]) and the analyzer counters merged across batch
//! workers ([`AnalysisStats`]). Both are relaxed-atomic / per-worker
//! accumulators whose one hard invariant is *conservation* — no sample
//! and no finding may be lost or double-counted, whatever the thread
//! interleaving — so these tests hammer them from many threads and
//! check the totals exactly.

use nka_quantum::api::{run_batch_parallel_traced, Query, SessionOptions, Verdict};
use nka_quantum::serve::stats::OPS;
use nka_quantum::serve::OpHistograms;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Eight threads hammer one shared [`OpHistograms`] with a known
/// per-op sample plan while a snapshot reader races them; every
/// recorded sample must land in exactly one bucket of exactly one op.
#[test]
fn concurrent_records_are_conserved_across_ops_and_snapshots() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 4_000;
    let hists = OpHistograms::new();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Writers: thread t records PER_THREAD samples, cycling over
        // every op and a spread of latencies from sub-bucket-exact
        // nanoseconds up into the millisecond octaves.
        for t in 0..THREADS {
            let hists = &hists;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let kind = OPS[(t as u64 + i) as usize % OPS.len()];
                    let ns = 1 + (i % 7) * 150_007 * (1 + t as u64);
                    hists.record(kind, Duration::from_nanos(ns));
                }
            });
        }
        // Reader: snapshots taken mid-hammer are approximate but must
        // never exceed the final total nor be internally inconsistent
        // (the snapshot's count is derived from its own bucket read).
        let (hists, done) = (&hists, &done);
        scope.spawn(move || {
            while !done.load(Ordering::Relaxed) {
                let snap = hists.snapshot();
                assert!(snap.total() <= THREADS as u64 * PER_THREAD);
                for kind in OPS {
                    let op = snap.op(kind);
                    assert_eq!(
                        op.count(),
                        op.nonzero_buckets().iter().map(|(_, n)| n).sum::<u64>(),
                        "mid-hammer snapshot lost samples between buckets and count"
                    );
                }
                std::thread::yield_now();
            }
        });
        // The writer handles drop at scope end; flag the reader once
        // all writers are known-finished by re-joining via a sentinel
        // thread that simply waits on the shared total.
        scope.spawn(move || {
            while hists.total() < THREADS as u64 * PER_THREAD {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Relaxed);
        });
    });

    let expected = THREADS as u64 * PER_THREAD;
    assert_eq!(hists.total(), expected, "samples lost under contention");
    let snap = hists.snapshot();
    assert_eq!(snap.total(), expected);
    // The cyclic plan spreads samples evenly: every op holds exactly
    // THREADS * PER_THREAD / 7 samples (PER_THREAD chosen divisible
    // by OPS.len() is not required — each thread's own cycle covers
    // every op ⌊PER_THREAD/7⌋ or ⌈PER_THREAD/7⌉ times, and the total
    // across the 7 phase-shifted threads still sums to the grand
    // total; assert per-op conservation against an exact replay).
    let mut expected_per_op = [0u64; OPS.len()];
    for t in 0..THREADS as u64 {
        for i in 0..PER_THREAD {
            expected_per_op[(t + i) as usize % OPS.len()] += 1;
        }
    }
    for (kind, want) in OPS.iter().zip(expected_per_op) {
        assert_eq!(
            snap.op(*kind).count(),
            want,
            "op {kind:?} lost or gained samples"
        );
    }
    // Sum conservation: the recorded nanosecond mass is exact (sums are
    // a single fetch_add, not bucketed).
    let mut expected_sum = 0u64;
    for t in 0..THREADS as u64 {
        for i in 0..PER_THREAD {
            expected_sum += 1 + (i % 7) * 150_007 * (1 + t);
        }
    }
    let total_sum: u64 = OPS.iter().map(|&kind| snap.op(kind).sum_ns()).sum();
    assert_eq!(total_sum, expected_sum, "sum_ns drifted under contention");
}

/// Analyzer-counter conservation across parallel batch workers: a
/// 32-query analyze batch (16 distinct dead-branch programs, each
/// duplicated once) must report exactly one finding per query and
/// exactly one Tier B check per query — split between engine decides
/// and certificate-cache hits — for every worker layout.
#[test]
fn parallel_analyze_batches_conserve_findings_and_tier_b_checks() {
    const GATES: [&str; 4] = ["h q0", "x q0", "y q0", "z q0"];
    let distinct: Vec<String> = (0..16)
        .map(|i| {
            // Base-4 digits of i pick a unique two-gate word, so every
            // program's dead arm is encoding-distinct (no cross-query
            // engine-cache coupling to blur the counts).
            let word = format!("{}; {}", GATES[i % 4], GATES[(i / 4) % 4]);
            let pad = if i < 4 {
                String::new()
            } else {
                format!("{}; ", GATES[i % 4])
            };
            format!("qubits 1; if q0 {{ {pad}{word}; abort }} else {{ skip }}")
        })
        .collect();
    let queries: Vec<Query> = distinct
        .iter()
        .chain(distinct.iter())
        .map(|p| Query::analyze(p, &["dead_branch"]).expect("well-formed"))
        .collect();
    assert_eq!(queries.len(), 32);

    for jobs in [1, 2, 4, 8] {
        let (responses, trace) =
            run_batch_parallel_traced(&queries, &SessionOptions::default(), jobs, None);
        let stats = trace.analysis;
        assert_eq!(responses.len(), 32);
        let mut findings_seen = 0u64;
        for resp in &responses {
            let Verdict::Analysis { findings } = &resp.verdict else {
                panic!("jobs={jobs}: expected an Analysis verdict");
            };
            assert_eq!(findings.len(), 1, "jobs={jobs}: one dead_branch per query");
            assert!(findings[0].certificate.is_some());
            findings_seen += findings.len() as u64;
        }
        // Conservation: the merged counters account for every finding
        // and every Tier B check exactly once, however the 32 queries
        // were sharded. Decides vs cache hits trade off with layout
        // (a duplicate only hits the cache if its twin ran on the same
        // worker), but their sum is invariant.
        assert_eq!(stats.findings_total(), findings_seen, "jobs={jobs}");
        assert_eq!(
            stats.tier_b_decides + stats.cert_cache_hits,
            32,
            "jobs={jobs}: Tier B checks lost or double-counted \
             (decides={}, hits={})",
            stats.tier_b_decides,
            stats.cert_cache_hits
        );
        assert!(
            stats.tier_b_decides >= 16,
            "jobs={jobs}: 16 distinct checks cannot all be cache hits"
        );
        if jobs == 1 {
            // One session sees both copies of each program: exactly 16
            // engine decides and 16 certificate-cache hits.
            assert_eq!(stats.tier_b_decides, 16);
            assert_eq!(stats.cert_cache_hits, 16);
        }
    }
}
