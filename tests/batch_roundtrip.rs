//! The JSONL batch surface, end to end: the checked-in 50-query file
//! must decode, run on one warm `Session` (exercising the verdict
//! cache), encode to machine-parseable JSONL, and *re*-decode to the
//! same queries — plus the same stream driven through the real `nka`
//! binary in both `batch` and `serve` modes.

use nka_quantum::api::json::Json;
use nka_quantum::api::{wire, Query, Session, Verdict};
use std::io::Write;
use std::process::{Command, Stdio};

const BATCH_FILE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/batch_50.jsonl");

fn load_queries() -> Vec<Query> {
    let text = std::fs::read_to_string(BATCH_FILE).expect("fixture readable");
    text.lines()
        .map(|line| {
            wire::decode_request(line)
                .unwrap_or_else(|err| panic!("bad fixture line {line:?}: {err}"))
                .expect("no skippable lines in the fixture")
        })
        .collect()
}

#[test]
fn fixture_has_50_queries_and_round_trips() {
    let queries = load_queries();
    assert_eq!(queries.len(), 50);
    for query in &queries {
        let encoded = wire::encode_request(query);
        let again = wire::decode_request(&encoded)
            .unwrap()
            .expect("round-trip decodes");
        assert_eq!(&again, query, "request round-trip failed: {encoded}");
    }
}

#[test]
fn one_warm_session_answers_the_file_with_cache_hits() {
    let queries = load_queries();
    let mut session = Session::new();
    let responses = session.run_all(&queries);
    assert_eq!(responses.len(), 50);

    // The acceptance bar: the stream amortizes — at least one whole
    // cache class is exercised (the fixture repeats queries, so verdict
    // hits must appear; shared expressions also produce compile hits).
    let stats = session.stats();
    assert!(stats.answer_hits >= 1, "no verdict-cache hits: {stats:?}");
    assert!(stats.compile_hits >= 1, "no compile-cache hits: {stats:?}");

    // Every response line is parseable JSON that reparses to its query.
    for (query, resp) in queries.iter().zip(&responses) {
        let line = wire::encode_response(query, resp);
        let value = Json::parse(&line)
            .unwrap_or_else(|err| panic!("response not valid JSON ({err}): {line}"));
        let verdict = value.get("verdict").and_then(Json::as_str).unwrap();
        assert!(
            ["holds", "refuted", "proved", "exhausted", "series"].contains(&verdict),
            "unexpected verdict {verdict} in {line}"
        );
        let reparsed = wire::decode_request(&line).unwrap().expect("reparses");
        assert_eq!(&reparsed, query, "print → reparse diverged: {line}");
    }

    // Spot-check content: proofs proved, series populated.
    assert!(responses
        .iter()
        .any(|r| matches!(r.verdict, Verdict::Proved { proof_size } if proof_size > 0)));
    assert!(responses
        .iter()
        .any(|r| matches!(&r.verdict, Verdict::Series { terms, .. } if !terms.is_empty())));
}

#[test]
fn nka_batch_binary_emits_one_json_line_per_query() {
    let output = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["--stats", "batch", "--json", BATCH_FILE])
        .output()
        .expect("nka binary runs");
    assert!(
        output.status.success(),
        "batch exited {:?}: {}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("UTF-8 output");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 50, "expected one response per query");
    for line in &lines {
        let value = Json::parse(line)
            .unwrap_or_else(|err| panic!("unparseable output line ({err}): {line}"));
        assert!(value.get("op").is_some(), "missing op: {line}");
        assert!(value.get("verdict").is_some(), "missing verdict: {line}");
        assert!(value.get("micros").is_some(), "missing micros: {line}");
    }
    // --stats goes to stderr — as one JSON object, since the stream ran
    // with --json — and the warm stream must show verdict hits.
    let stderr = String::from_utf8_lossy(&output.stderr);
    let stats_line = stderr
        .lines()
        .find(|line| line.starts_with('{'))
        .unwrap_or_else(|| panic!("no JSON stats line on stderr: {stderr}"));
    let stats = Json::parse(stats_line).expect("stats JSON parses");
    assert!(
        stats
            .get("engine")
            .and_then(|e| e.get("answer_hits"))
            .and_then(Json::as_i64)
            > Some(0),
        "no verdict-cache hits reported: {stats_line}"
    );
}

#[test]
fn hundred_query_stream_stays_on_one_warm_session() {
    // The fixture twice over = a 100-query stream on stdin. One process,
    // one session: the second half must be pure verdict-cache hits, and
    // every answer one machine-parseable JSON line.
    let fixture = std::fs::read_to_string(BATCH_FILE).unwrap();
    let stream = format!("{fixture}{fixture}");
    let mut child = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["--stats", "batch", "--json"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(stream.as_bytes())
        .unwrap();
    let output = child.wait_with_output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 100);
    let mut answer_hits = 0i64;
    for line in &lines {
        let value = Json::parse(line)
            .unwrap_or_else(|err| panic!("unparseable output line ({err}): {line}"));
        answer_hits += value
            .get("stats")
            .and_then(|s| s.get("answer_hits"))
            .and_then(Json::as_i64)
            .unwrap_or(0);
    }
    // Engine-backed queries in the fixture (36 of 50, the rest are
    // series/prove) all repeat in the second half; plus the fixture's
    // own internal repeats.
    assert!(answer_hits >= 36, "only {answer_hits} verdict hits");
}

#[test]
fn nka_batch_exit_codes_classify_the_stream() {
    // A malformed line: exit 2, and the good lines still answer.
    let mut child = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["batch", "--json"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"p = p\nnot a request\np + p = p\n")
        .unwrap();
    let output = child.wait_with_output().unwrap();
    assert_eq!(output.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(stdout.lines().count(), 3, "{stdout}");
    assert!(stdout.contains("\"error\""), "{stdout}");

    // A budget-exhausted query (tiny budget): exit 3.
    let mut child = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["--budget", "1", "batch", "--json"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"1* a = 1* a a\n")
        .unwrap();
    let output = child.wait_with_output().unwrap();
    assert_eq!(output.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&output.stdout).contains("budget_exhausted"));
}

/// Strips the volatile per-response fields (`stats`, `micros`) from a
/// JSONL line, leaving the stable projection — query fields, verdict,
/// verdict payload, and term-size accounting — that must be identical
/// across execution strategies.
fn stable_projection(line: &str) -> Vec<(String, String)> {
    let Json::Obj(fields) = Json::parse(line).expect("valid JSON line") else {
        panic!("response line is not an object: {line}");
    };
    fields
        .into_iter()
        .filter(|(k, _)| k != "stats" && k != "micros")
        .map(|(k, v)| (k, v.to_string()))
        .collect()
}

#[test]
fn nka_batch_jobs_4_matches_sequential_output() {
    let sequential = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["batch", "--json", BATCH_FILE])
        .output()
        .expect("nka binary runs");
    let parallel = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["--jobs", "4", "--stats", "batch", "--json", BATCH_FILE])
        .output()
        .expect("nka binary runs");
    assert_eq!(sequential.status.code(), Some(0));
    assert_eq!(parallel.status.code(), Some(0));
    let seq = String::from_utf8(sequential.stdout).unwrap();
    let par = String::from_utf8(parallel.stdout).unwrap();
    assert_eq!(seq.lines().count(), 50);
    assert_eq!(par.lines().count(), 50);
    for (i, (s, p)) in seq.lines().zip(par.lines()).enumerate() {
        assert_eq!(
            stable_projection(s),
            stable_projection(p),
            "line {} diverged between --jobs 1 and --jobs 4",
            i + 1
        );
    }
    // --stats aggregates across the workers (JSON form under --json).
    let stderr = String::from_utf8_lossy(&parallel.stderr);
    let stats_line = stderr
        .lines()
        .find(|line| line.starts_with('{'))
        .unwrap_or_else(|| panic!("no JSON stats line on stderr: {stderr}"));
    let stats = Json::parse(stats_line).expect("stats JSON parses");
    assert!(stats.get("engine").is_some(), "stderr: {stderr}");
    assert!(stats.get("expr").is_some(), "stderr: {stderr}");
    assert_eq!(
        stats.get("queries").and_then(Json::as_i64),
        Some(50),
        "stderr: {stderr}"
    );
}

#[test]
fn nka_batch_jobs_preserves_exit_codes_and_error_lines() {
    // Same malformed stream as the sequential exit-code test, sharded:
    // classification and line-per-line output must not change.
    let mut child = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["--jobs", "3", "batch", "--json"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"p = p\nnot a request\np + p = p\n")
        .unwrap();
    let output = child.wait_with_output().unwrap();
    assert_eq!(output.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(stdout.lines().count(), 3, "{stdout}");
    assert!(stdout.contains("\"error\""), "{stdout}");

    // --jobs outside batch is a usage error.
    let output = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["--jobs", "2", "decide", "p", "p"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn nka_serve_answers_line_per_line() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["serve", "--json"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            b"{\"op\":\"nka_eq\",\"lhs\":\"1 + p p*\",\"rhs\":\"p*\"}\n\
              {\"op\":\"nka_eq\",\"lhs\":\"1 + p p*\",\"rhs\":\"p*\"}\n\
              {\"op\":\"oops\"}\n",
        )
        .unwrap();
    let output = child.wait_with_output().unwrap();
    assert_eq!(output.status.code(), Some(0), "serve always exits 0 at EOF");
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    let first = Json::parse(lines[0]).unwrap();
    assert_eq!(first.get("verdict").and_then(Json::as_str), Some("holds"));
    // The repeated request was served from the warm engine's cache.
    let second = Json::parse(lines[1]).unwrap();
    assert_eq!(
        second
            .get("stats")
            .and_then(|s| s.get("answer_hits"))
            .and_then(Json::as_i64),
        Some(1),
        "{stdout}"
    );
    let third = Json::parse(lines[2]).unwrap();
    assert_eq!(third.get("verdict").and_then(Json::as_str), Some("error"));
}
