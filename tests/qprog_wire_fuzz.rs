//! Wire-robustness regression tests for the quantum workload ops:
//! malformed `prog_eq`/`hoare` lines must come back as *structured*
//! errors (JSON `verdict:"error"` with `field` and byte `span`; caret
//! rendering on stderr), must NOT kill the stream — every subsequent
//! line still answers — and the batch exit code is 2 only once EOF is
//! reached, exactly the PR 2 semantics for malformed expression lines.

use nka_quantum::api::json::Json;
use nka_quantum::api::{wire, ApiError};
use std::io::Write;
use std::process::{Command, Stdio};

/// Malformed program/effect lines paired with the field the error must
/// blame and a fragment the message must contain.
fn malformed_lines() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        // Truncated program text (open block at end of input).
        (
            r#"{"op":"prog_eq","p":"qubits 1; while q0 { h q0","q":"qubits 1; skip"}"#,
            "p",
            "expected",
        ),
        // Unknown gate name.
        (
            r#"{"op":"prog_eq","p":"qubits 1; h q0","q":"qubits 1; frob q0"}"#,
            "q",
            "unknown gate",
        ),
        // Qubit out of range.
        (
            r#"{"op":"prog_eq","p":"qubits 2; cnot q0 q5","q":"qubits 2; skip"}"#,
            "p",
            "out of range",
        ),
        // Missing header.
        (
            r#"{"op":"prog_eq","p":"h q0","q":"qubits 1; skip"}"#,
            "p",
            "qubits",
        ),
        // Truncated effect / wrong bit width for the program.
        (
            r#"{"op":"hoare","pre":"ket(01)","prog":"qubits 1; x q0","post":"I"}"#,
            "pre",
            "one bit per qubit",
        ),
        // Not an effect (exceeds the identity).
        (
            r#"{"op":"hoare","pre":"2 I","prog":"qubits 1; x q0","post":"I"}"#,
            "pre",
            "not an effect",
        ),
        // Unexpected character in the effect language.
        (
            r#"{"op":"hoare","pre":"I ? I","prog":"qubits 1; x q0","post":"I"}"#,
            "pre",
            "unexpected character",
        ),
        // Gate listed with the same qubit twice.
        (
            r#"{"op":"prog_eq","p":"qubits 2; swap q1 q1","q":"qubits 2; skip"}"#,
            "p",
            "twice",
        ),
        // Truncated program in an analyze request.
        (
            r#"{"op":"analyze","prog":"qubits 1; while q0 { h q0"}"#,
            "prog",
            "expected",
        ),
        // Oversized analyze request (register cap is 5 qubits).
        (
            r#"{"op":"analyze","prog":"qubits 9; h q0; h q1; h q2"}"#,
            "prog",
            "1..=5",
        ),
    ]
}

#[test]
fn decode_rejects_each_line_with_field_and_span() {
    for (line, field, fragment) in malformed_lines() {
        let err =
            wire::decode_request(line).expect_err(&format!("line should be rejected: {line}"));
        let ApiError::ParseProgram {
            field: got_field,
            err: prog_err,
            ..
        } = &err
        else {
            panic!("expected a program parse error for {line}, got {err:?}");
        };
        assert_eq!(*got_field, field, "wrong field blamed for {line}");
        let (start, end) = prog_err.span();
        assert!(start <= end, "inverted span for {line}");
        assert!(
            err.to_string().contains(fragment),
            "message {:?} lacks {fragment:?}",
            err.to_string()
        );
        // The caret rendering marks a column (the structured span).
        assert!(err.render().contains('^'), "{}", err.render());
        // The encoded error line is machine-parseable JSON with the
        // span attached.
        let encoded = wire::encode_error(&err);
        let value = Json::parse(&encoded).expect("error line is JSON");
        assert_eq!(value.get("verdict").and_then(Json::as_str), Some("error"));
        assert_eq!(value.get("field").and_then(Json::as_str), Some(field));
        let span = value.get("span").and_then(Json::as_array).expect("span");
        assert_eq!(span.len(), 2);
    }
    // Dimension mismatch is a wire-level malformation (no span — the
    // sources are individually fine).
    let err = wire::decode_request(r#"{"op":"prog_eq","p":"qubits 1; skip","q":"qubits 2; skip"}"#)
        .expect_err("mismatched qubit counts");
    assert!(matches!(err, ApiError::Malformed(_)), "{err:?}");
}

/// An unknown pass name is a wire-level malformation like the
/// dimension mismatch above: structured `verdict:"error"` but no span
/// (the program source itself is fine), with the valid pass names
/// listed in the message; through `serve` the stream stays alive and
/// the next analyze request still answers.
#[test]
fn analyze_unknown_pass_is_malformed_and_stream_survives() {
    let bad = r#"{"op":"analyze","prog":"qubits 1; h q0","passes":["bogus"]}"#;
    let err = wire::decode_request(bad).expect_err("unknown pass name");
    assert!(matches!(err, ApiError::Malformed(_)), "{err:?}");
    let message = err.to_string();
    assert!(message.contains("bogus"), "{message}");
    assert!(message.contains("dead_branch"), "{message}");
    let encoded = wire::encode_error(&err);
    let value = Json::parse(&encoded).expect("error line is JSON");
    assert_eq!(value.get("verdict").and_then(Json::as_str), Some("error"));
    assert!(value.get("span").is_none(), "{encoded}");

    let good = r#"{"op":"analyze","prog":"qubits 1; abort; h q0"}"#;
    let input = format!("{bad}\n{good}\n");
    let mut child = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["serve", "--json"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("nka binary runs");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write serve input");
    let output = child.wait_with_output().expect("serve completes");
    assert_eq!(output.status.code(), Some(0), "serve exits 0 at EOF");
    let stdout = String::from_utf8(output.stdout).expect("UTF-8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].contains("\"error\""), "{}", lines[0]);
    assert!(lines[1].contains("\"analysis\""), "{}", lines[1]);
    assert!(
        lines[1].contains("unreachable_code"),
        "the good analyze line still runs every pass: {}",
        lines[1]
    );
}

/// One batch stream interleaving every malformed line with good
/// queries: each line answers (error or verdict) in order, the stream
/// survives to EOF, and only then does the exit code report 2.
#[test]
fn batch_stream_survives_malformed_program_lines() {
    let good = r#"{"op":"prog_eq","p":"qubits 1; skip; h q0","q":"qubits 1; h q0"}"#;
    let mut input = String::new();
    let cases = malformed_lines();
    for (line, _, _) in &cases {
        input.push_str(line);
        input.push('\n');
        input.push_str(good);
        input.push('\n');
    }

    let mut child = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["batch", "--json"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("nka binary runs");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write batch input");
    let output = child.wait_with_output().expect("batch completes");

    // Exit 2 (malformed input seen), but only after the whole stream.
    assert_eq!(output.status.code(), Some(2));
    let stdout = String::from_utf8(output.stdout).expect("UTF-8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines.len(),
        2 * cases.len(),
        "every line must answer: {stdout}"
    );
    for (i, line) in lines.iter().enumerate() {
        let value = Json::parse(line).unwrap_or_else(|e| panic!("line {i} not JSON ({e}): {line}"));
        let verdict = value.get("verdict").and_then(Json::as_str).unwrap();
        if i % 2 == 0 {
            assert_eq!(verdict, "error", "line {i}: {line}");
            assert!(value.get("span").is_some(), "line {i} lacks span: {line}");
        } else {
            assert_eq!(verdict, "holds", "good line {i} must still answer: {line}");
        }
    }
    // The caret renderings land on stderr, one per malformed line.
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.matches('^').count() >= cases.len(), "{stderr}");
}

/// An error-only stream must leave the star-free fast-path counters at
/// zero: malformed lines are rejected at decode time and never reach
/// the decider, so `--stats` reporting any tier hit (or fallback) here
/// would mean the engine ran on unparsed input.
#[test]
fn error_only_stream_reports_zero_fast_path_counters() {
    let mut input = String::new();
    let cases = malformed_lines();
    for (line, _, _) in &cases {
        input.push_str(line);
        input.push('\n');
    }
    let mut child = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["--stats", "batch", "--json"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("nka binary runs");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write batch input");
    let output = child.wait_with_output().expect("batch completes");

    assert_eq!(output.status.code(), Some(2));
    let stdout = String::from_utf8(output.stdout).expect("UTF-8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), cases.len(), "every line must answer: {stdout}");
    for (i, line) in lines.iter().enumerate() {
        let value = Json::parse(line).unwrap_or_else(|e| panic!("line {i} not JSON ({e}): {line}"));
        assert_eq!(
            value.get("verdict").and_then(Json::as_str),
            Some("error"),
            "line {i}: {line}"
        );
    }
    // Under --json the --stats report is one JSON object on stderr;
    // every fast-path counter in it must still read zero.
    let stderr = String::from_utf8_lossy(&output.stderr);
    let stats_line = stderr
        .lines()
        .find(|line| line.starts_with('{'))
        .unwrap_or_else(|| panic!("no JSON stats line on stderr: {stderr}"));
    let stats = Json::parse(stats_line).expect("stats JSON parses");
    let engine = stats.get("engine").expect("engine section");
    for key in ["starfree_hits", "prefix_hits", "fastpath_fallbacks"] {
        assert_eq!(
            engine.get(key).and_then(Json::as_i64),
            Some(0),
            "fast-path counter {key:?} moved on an error-only stream:\n{stderr}"
        );
    }
    // Ditto the analyzer counters: the malformed analyze lines were
    // rejected at decode time, so no pass ever ran.
    let analysis = stats.get("analysis").expect("analysis section");
    for key in ["findings_total", "tier_b_decides", "cert_cache_hits"] {
        assert_eq!(
            analysis.get(key).and_then(Json::as_i64),
            Some(0),
            "analyzer counter {key:?} moved on an error-only stream:\n{stderr}"
        );
    }
}

/// Same stream through `serve`: errors answer in-line and the loop
/// keeps serving; serve exits 0 at end of input (errors are responses,
/// not failures — PR 2 semantics).
#[test]
fn serve_stream_survives_malformed_program_lines() {
    let (bad, _, _) = malformed_lines()[1];
    let good = r#"{"op":"hoare","pre":"ket(1)","prog":"qubits 1; x q0","post":"ket(0)"}"#;
    let input = format!("{bad}\n{good}\n");
    let mut child = Command::new(env!("CARGO_BIN_EXE_nka"))
        .args(["serve", "--json"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("nka binary runs");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write serve input");
    let output = child.wait_with_output().expect("serve completes");
    assert_eq!(output.status.code(), Some(0), "serve exits 0 at EOF");
    let stdout = String::from_utf8(output.stdout).expect("UTF-8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].contains("\"error\""), "{}", lines[0]);
    assert!(lines[1].contains("\"holds\""), "{}", lines[1]);
}
