//! Shared test support for the quantum workload suites: a
//! shrinking-friendly random program generator, NKA-preserving program
//! rewrites, and the superoperator-semantics ground-truth oracle.
//!
//! Programs are generated as *recipes* ([`RProg`]/[`RStmt`]) — a small
//! AST over qubit indices that renders to the `nka_qprog::surface`
//! language — rather than as raw source strings, so a failing case
//! prints as a structured value and (under a shrinking proptest
//! implementation) would shrink recipe-node by recipe-node; the
//! offline shim reproduces cases from its deterministic per-test seed
//! instead.
//!
//! `while` recipes are generated in a *terminating shape*: the body
//! never touches the guard qubit except for a final `x`/`h` mixer on
//! it. After the measurement collapses the guard to `|1⟩`, the body
//! leaves it there and the mixer then moves at least half of the
//! remaining mass to the exit outcome (`x`: all of it, `h`: exactly
//! half), so `Program::run`'s fixpoint iteration converges in ≲ 40
//! rounds and the differential oracle stays fast.

use nka_quantum::linalg::CMatrix;
use nka_quantum::qprog::SurfaceProgram;
use proptest::prelude::TestRng;
use proptest::strategy::Strategy;
use std::fmt;

/// One-qubit gates the generator draws from.
pub const GATES1: [&str; 6] = ["h", "x", "y", "z", "s", "t"];
/// Two-qubit gates the generator draws from.
pub const GATES2: [&str; 3] = ["cnot", "cz", "swap"];

/// A recipe statement; renders 1:1 to the surface language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RStmt {
    Skip,
    Abort,
    Init(usize),
    Gate1(&'static str, usize),
    Gate2(&'static str, usize, usize),
    If(usize, Vec<RStmt>, Vec<RStmt>),
    /// `While(guard, body)` — by construction `body` avoids the guard
    /// qubit and ends with an `x`/`h` mixer on it (see module docs).
    While(usize, Vec<RStmt>),
}

/// A recipe program: qubit count plus top-level statement list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RProg {
    pub qubits: usize,
    pub body: Vec<RStmt>,
}

fn render_seq(stmts: &[RStmt], out: &mut String) {
    for (i, s) in stmts.iter().enumerate() {
        if i > 0 {
            out.push_str("; ");
        }
        render_stmt(s, out);
    }
    if stmts.is_empty() {
        out.push_str("skip");
    }
}

fn render_stmt(s: &RStmt, out: &mut String) {
    match s {
        RStmt::Skip => out.push_str("skip"),
        RStmt::Abort => out.push_str("abort"),
        RStmt::Init(q) => {
            out.push_str("init q");
            out.push_str(&q.to_string());
        }
        RStmt::Gate1(g, q) => {
            out.push_str(g);
            out.push_str(" q");
            out.push_str(&q.to_string());
        }
        RStmt::Gate2(g, a, b) => {
            out.push_str(&format!("{g} q{a} q{b}"));
        }
        RStmt::If(q, then_b, else_b) => {
            out.push_str(&format!("if q{q} {{ "));
            render_seq(then_b, out);
            out.push_str(" } else { ");
            render_seq(else_b, out);
            out.push_str(" }");
        }
        RStmt::While(q, body) => {
            out.push_str(&format!("while q{q} {{ "));
            render_seq(body, out);
            out.push_str(" }");
        }
    }
}

impl fmt::Display for RProg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = format!("qubits {}; ", self.qubits);
        render_seq(&self.body, &mut out);
        f.write_str(&out)
    }
}

impl RProg {
    /// Renders and parses the recipe; the surface parser accepting the
    /// rendering is itself part of what the suites exercise.
    pub fn parse(&self) -> SurfaceProgram {
        let src = self.to_string();
        SurfaceProgram::parse(&src)
            .unwrap_or_else(|err| panic!("generated program failed to parse: {}\n{src}", err))
    }
}

fn pick(rng: &mut TestRng, n: usize) -> usize {
    rng.below(n as u64) as usize
}

/// A random qubit not in `forbidden`; `None` if every qubit is.
fn free_qubit(rng: &mut TestRng, qubits: usize, forbidden: &[usize]) -> Option<usize> {
    let allowed: Vec<usize> = (0..qubits).filter(|q| !forbidden.contains(q)).collect();
    if allowed.is_empty() {
        None
    } else {
        Some(allowed[pick(rng, allowed.len())])
    }
}

/// One random statement. `depth` bounds the remaining nesting;
/// `forbidden` are guard qubits of enclosing loops (never touched, so
/// the loops terminate — see module docs).
fn gen_stmt(rng: &mut TestRng, qubits: usize, depth: usize, forbidden: &[usize]) -> RStmt {
    // Weight simple statements heavily; nesting only while depth
    // lasts. Loops are deliberately rare and small-bodied: every
    // `while` becomes a Kleene star in the encoding, and the exact
    // decision procedure's cost is driven by star count × alphabet
    // size (`ProgStrategy::generate` adds the complementary caps on
    // loop and statement counts).
    let max = if depth == 0 { 7 } else { 10 };
    loop {
        match pick(rng, max) {
            0 => return RStmt::Skip,
            1 => return RStmt::Abort,
            2 => {
                if let Some(q) = free_qubit(rng, qubits, forbidden) {
                    return RStmt::Init(q);
                }
            }
            3..=5 => {
                if let Some(q) = free_qubit(rng, qubits, forbidden) {
                    return RStmt::Gate1(GATES1[pick(rng, GATES1.len())], q);
                }
            }
            6 => {
                if let Some(a) = free_qubit(rng, qubits, forbidden) {
                    if let Some(b) = free_qubit(rng, qubits, &[forbidden, &[a]].concat()) {
                        return RStmt::Gate2(GATES2[pick(rng, GATES2.len())], a, b);
                    }
                }
            }
            7 | 8 => {
                if let Some(q) = free_qubit(rng, qubits, forbidden) {
                    let then_b = gen_seq(rng, qubits, depth - 1, forbidden, 2);
                    let else_b = gen_seq(rng, qubits, depth - 1, forbidden, 2);
                    return RStmt::If(q, then_b, else_b);
                }
            }
            _ => {
                if let Some(q) = free_qubit(rng, qubits, forbidden) {
                    let inner_forbidden = [forbidden, &[q]].concat();
                    let mut body = gen_seq(rng, qubits, depth - 1, &inner_forbidden, 1);
                    let mixer = if rng.below(2) == 0 { "x" } else { "h" };
                    body.push(RStmt::Gate1(mixer, q));
                    return RStmt::While(q, body);
                }
            }
        }
    }
}

fn while_count(stmts: &[RStmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            RStmt::While(_, b) => 1 + while_count(b),
            RStmt::If(_, t, e) => while_count(t) + while_count(e),
            _ => 0,
        })
        .sum()
}

fn stmt_count(stmts: &[RStmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            RStmt::While(_, b) => 1 + stmt_count(b),
            RStmt::If(_, t, e) => 1 + stmt_count(t) + stmt_count(e),
            _ => 1,
        })
        .sum()
}

fn gen_seq(
    rng: &mut TestRng,
    qubits: usize,
    depth: usize,
    forbidden: &[usize],
    max_len: usize,
) -> Vec<RStmt> {
    let len = pick(rng, max_len + 1);
    (0..len)
        .map(|_| gen_stmt(rng, qubits, depth, forbidden))
        .collect()
}

/// Random programs over `1..=max_qubits` qubits with nesting depth
/// `≤ max_depth`, at most `max_whiles` loops, and a handful of
/// statements per block.
#[derive(Clone, Debug)]
pub struct ProgStrategy {
    pub max_qubits: usize,
    pub max_depth: usize,
    pub max_whiles: usize,
}

impl Strategy for ProgStrategy {
    type Value = RProg;

    fn generate(&self, rng: &mut TestRng) -> RProg {
        let qubits = 1 + pick(rng, self.max_qubits);
        loop {
            let body = gen_seq(rng, qubits, self.max_depth, &[], 4);
            // Keep the decide-side cost envelope bounded: each `while`
            // is a star (plus two fresh measurement symbols) in the
            // encoding, and the exact equivalence check is the
            // expensive half of the differential oracle. Two loops and
            // ~a dozen statements keeps the slowest decided pair in
            // the tens of milliseconds while still covering nested
            // control flow.
            if while_count(&body) <= self.max_whiles && stmt_count(&body) <= 12 {
                return RProg { qubits, body };
            }
        }
    }
}

/// The default differential-suite generator: ≤ 3 qubits, depth ≤ 5
/// (the ISSUE's envelope; dimensions stay ≤ 8 so the density-basis
/// oracle is fast), ≤ 2 loops.
#[must_use]
pub fn small_programs() -> ProgStrategy {
    ProgStrategy {
        max_qubits: 3,
        max_depth: 5,
        max_whiles: 2,
    }
}

/// Loop-free variant of [`small_programs`]: no `while` means no Kleene
/// star anywhere in the encoding, so every pair drawn from this
/// strategy is answerable by the decider's star-free fast path — the
/// generator the fast-vs-generic parity property uses to guarantee
/// tier-1 coverage.
#[must_use]
pub fn loop_free_programs() -> ProgStrategy {
    ProgStrategy {
        max_qubits: 3,
        max_depth: 5,
        max_whiles: 0,
    }
}

/// Applies `rounds` random *encoding-preserving* rewrites: the result
/// `q` satisfies `⊢NKA Enc(p) = Enc(q)` by construction (and therefore
/// `⟦p⟧ = ⟦q⟧` by Theorem 4.5) — the "equal direction" of the
/// differential property.
#[must_use]
pub fn rewrite_preserving(p: &RProg, rng: &mut TestRng, rounds: usize) -> RProg {
    let mut out = p.clone();
    // At most one unfolding per chain: each unroll duplicates a whole
    // starred body in the encoding, and stacking them multiplies the
    // decide cost without adding property coverage.
    let mut unrolled = false;
    for _ in 0..rounds {
        let before = while_count(&out.body);
        out = rewrite_once(&out, !unrolled, rng);
        if while_count(&out.body) > before {
            unrolled = true;
        }
    }
    out
}

fn rewrite_once(p: &RProg, allow_unroll: bool, rng: &mut TestRng) -> RProg {
    let mut body = p.body.clone();
    // Candidate rewrites; all are NKA equalities of the encodings:
    //   0: insert `skip` anywhere            (1 · e = e)
    //   1: unroll the first top-level while  (star unfolding)
    //   2: pad after a top-level abort       (0 · e = 0)
    let unrollable = if allow_unroll {
        body.iter().position(|s| matches!(s, RStmt::While(..)))
    } else {
        None
    };
    let abort_at = body.iter().position(|s| matches!(s, RStmt::Abort));
    loop {
        match pick(rng, 3) {
            0 => {
                let at = pick(rng, body.len() + 1);
                body.insert(at, RStmt::Skip);
                break;
            }
            1 => {
                if let Some(i) = unrollable {
                    let RStmt::While(q, inner) = body[i].clone() else {
                        unreachable!()
                    };
                    let mut then_b = inner.clone();
                    then_b.push(RStmt::While(q, inner));
                    body[i] = RStmt::If(q, then_b, Vec::new());
                    break;
                }
            }
            _ => {
                if let Some(i) = abort_at {
                    // Anything sequenced after an abort is absorbed.
                    let junk = match pick(rng, 2) {
                        0 => RStmt::Skip,
                        _ => RStmt::Gate1(GATES1[pick(rng, GATES1.len())], pick(rng, p.qubits)),
                    };
                    body.insert(i + 1, junk);
                    break;
                }
            }
        }
    }
    RProg {
        qubits: p.qubits,
        body,
    }
}

/// A spanning set of `dim²` genuine density matrices for the Hermitian
/// operators on `C^dim`: the basis projectors `|i⟩⟨i|`, plus for each
/// `i < j` the normalized `(|i⟩+|j⟩)` and `(|i⟩+i|j⟩)` pure states.
/// `Program::run` is linear, so agreement on these decides equality of
/// denotations.
#[must_use]
pub fn density_basis(dim: usize) -> Vec<CMatrix> {
    use nka_quantum::linalg::Complex;
    let mut out = Vec::with_capacity(dim * dim);
    for i in 0..dim {
        let mut m = CMatrix::zeros(dim, dim);
        m[(i, i)] = Complex::ONE;
        out.push(m);
    }
    let half = Complex::from(0.5);
    for i in 0..dim {
        for j in (i + 1)..dim {
            // (|i⟩+|j⟩)(⟨i|+⟨j|) / 2
            let mut m = CMatrix::zeros(dim, dim);
            m[(i, i)] = half;
            m[(j, j)] = half;
            m[(i, j)] = half;
            m[(j, i)] = half;
            out.push(m);
            // (|i⟩+i|j⟩)(⟨i|−i⟨j|) / 2
            let mut m = CMatrix::zeros(dim, dim);
            m[(i, i)] = half;
            m[(j, j)] = half;
            m[(i, j)] = Complex::new(0.0, -0.5);
            m[(j, i)] = Complex::new(0.0, 0.5);
            out.push(m);
        }
    }
    out
}

/// Ground truth: `⟦p⟧ = ⟦q⟧`, decided by running both programs on the
/// density basis (superoperator semantics, no algebra involved).
#[must_use]
pub fn semantically_equal(p: &SurfaceProgram, q: &SurfaceProgram, tol: f64) -> bool {
    assert_eq!(p.dim(), q.dim());
    density_basis(p.dim())
        .iter()
        .all(|rho| p.program().run(rho).approx_eq(&q.program().run(rho), tol))
}
