//! Expr API v2 contract tests: interned (handle) equality coincides with
//! structural equality, expressions survive parser round-trips, sharing
//! accounting is consistent, and the thread-safety guarantees hold
//! statically for the whole decision stack.

use nka_quantum::syntax::{
    interned_expr_count, random_expr, Expr, ExprGenConfig, ExprId, ExprNode, Symbol,
};
use nka_quantum::wfa::Decider;
use nka_quantum::{Query, Response, Session};
use proptest::prelude::*;
use std::collections::HashMap;

/// The static heart of the API v2 redesign: everything from a bare
/// expression handle to a whole warm session crosses threads. This
/// compiles only if the bounds hold.
#[test]
fn expr_session_and_decider_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Expr>();
    assert_send_sync::<ExprId>();
    assert_send_sync::<ExprNode>();
    assert_send_sync::<Decider>();
    assert_send_sync::<Session>();
    assert_send_sync::<Query>();
    assert_send_sync::<Response>();
}

/// Structural equality computed the pre-v2 way — by walking both trees —
/// as the independent oracle for handle equality.
fn struct_eq(a: &Expr, b: &Expr) -> bool {
    match (a.node(), b.node()) {
        (ExprNode::Zero, ExprNode::Zero) | (ExprNode::One, ExprNode::One) => true,
        (ExprNode::Atom(x), ExprNode::Atom(y)) => x == y,
        (ExprNode::Add(al, ar), ExprNode::Add(bl, br))
        | (ExprNode::Mul(al, ar), ExprNode::Mul(bl, br)) => {
            struct_eq(&al, &bl) && struct_eq(&ar, &br)
        }
        (ExprNode::Star(x), ExprNode::Star(y)) => struct_eq(&x, &y),
        _ => false,
    }
}

/// Rebuilds an expression node-by-node through the public constructors,
/// without consulting the original's identity — if hash-consing works,
/// the rebuild lands on the same handle.
fn rebuild(e: &Expr) -> Expr {
    match e.node() {
        ExprNode::Zero => Expr::zero(),
        ExprNode::One => Expr::one(),
        ExprNode::Atom(s) => Expr::atom(s),
        ExprNode::Add(l, r) => rebuild(&l).add(&rebuild(&r)),
        ExprNode::Mul(l, r) => rebuild(&l).mul(&rebuild(&r)),
        ExprNode::Star(inner) => rebuild(&inner).star(),
    }
}

fn gen_config() -> ExprGenConfig {
    ExprGenConfig::new(vec![
        Symbol::intern("a"),
        Symbol::intern("b"),
        Symbol::intern("c"),
    ])
    .with_target_size(14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Interned equality ⇔ structural equality, on random generator
    /// pairs (mostly unequal) and on independent rebuilds (always
    /// equal).
    #[test]
    fn interned_equality_is_structural_equality(seed in any::<u64>()) {
        let config = gen_config();
        let mut state = seed | 1;
        let e = random_expr(&config, &mut state);
        let f = random_expr(&config, &mut state);
        prop_assert_eq!(e == f, struct_eq(&e, &f));
        prop_assert_eq!(e.id() == f.id(), struct_eq(&e, &f));
        // An independent reconstruction is the same handle.
        let r = rebuild(&e);
        prop_assert!(struct_eq(&e, &r));
        prop_assert_eq!(e.id(), r.id());
    }

    /// Display → parse lands on the same interned handle.
    #[test]
    fn parser_roundtrip_preserves_identity(seed in any::<u64>()) {
        let config = gen_config();
        let mut state = seed | 1;
        let e = random_expr(&config, &mut state);
        let reparsed: Expr = e.to_string().parse().unwrap();
        prop_assert_eq!(e, reparsed);
        prop_assert_eq!(e.id(), reparsed.id());
    }

    /// Size accounting: the tree reading dominates the arena footprint,
    /// both are positive, and `from_id` resolves every subterm.
    #[test]
    fn sharing_accounting_is_consistent(seed in any::<u64>()) {
        let config = gen_config();
        let mut state = seed | 1;
        let e = random_expr(&config, &mut state);
        prop_assert!(e.subterm_count() >= 1);
        prop_assert!(e.size() >= e.subterm_count());
        prop_assert!(interned_expr_count() >= e.subterm_count());
        let mut ids = std::collections::HashSet::new();
        e.collect_subterm_ids(&mut ids);
        prop_assert_eq!(ids.len(), e.subterm_count());
        for id in ids {
            let sub = Expr::from_id(id).expect("subterm resolves");
            prop_assert_eq!(sub.id(), id);
        }
    }

    /// Substitution respects interning: substituting through shared
    /// structure agrees with the naive tree-walk result.
    #[test]
    fn substitution_agrees_with_tree_semantics(seed in any::<u64>()) {
        let config = gen_config();
        let mut state = seed | 1;
        let e = random_expr(&config, &mut state);
        let mut map = HashMap::new();
        map.insert(Symbol::intern("a"), random_expr(&config, &mut state));
        map.insert(Symbol::intern("b"), Expr::one());
        fn naive(e: &Expr, map: &HashMap<Symbol, Expr>) -> Expr {
            match e.node() {
                ExprNode::Zero | ExprNode::One => *e,
                ExprNode::Atom(s) => map.get(&s).copied().unwrap_or(*e),
                ExprNode::Add(l, r) => naive(&l, map).add(&naive(&r, map)),
                ExprNode::Mul(l, r) => naive(&l, map).mul(&naive(&r, map)),
                ExprNode::Star(inner) => naive(&inner, map).star(),
            }
        }
        prop_assert_eq!(e.subst_atoms(&map), naive(&e, &map));
    }
}

/// Handles built concurrently in many threads agree with handles built
/// serially — the arena is one process-global structure.
#[test]
fn concurrent_interning_converges() {
    let sources = [
        "(m0 p)* m1",
        "(p + q)* (r + 0 1)*",
        "p p p p + q q q q",
        "1* (a b c)*",
    ];
    let serial: Vec<ExprId> = sources
        .iter()
        .map(|s| s.parse::<Expr>().unwrap().id())
        .collect();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                sources
                    .iter()
                    .map(|s| s.parse::<Expr>().unwrap().id())
                    .collect::<Vec<ExprId>>()
            })
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.join().unwrap(), serial);
    }
}

/// A session moved into another thread keeps its warm caches — the
/// property `run_batch_parallel` and future serving PRs rely on.
#[test]
fn sessions_move_across_threads_warm() {
    let mut session = Session::new();
    let query = Query::nka_eq("(p q)* p", "p (q p)*").unwrap();
    let cold = session.run(&query);
    assert!(cold.stats_delta.compile_misses > 0);
    let handle = std::thread::spawn(move || {
        let resp = session.run(&query);
        (resp.stats_delta.answer_hits, session)
    });
    let (hits, mut session) = handle.join().unwrap();
    assert_eq!(hits, 1, "verdict cache survived the move");
    // And back on the main thread, still warm.
    let resp = session.run(&Query::nka_eq("(p q)* p", "p (q p)*").unwrap());
    assert_eq!(resp.stats_delta.answer_hits, 1);
}
